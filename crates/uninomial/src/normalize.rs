//! Normalization of UniNomial expressions into *sum-product normal form*.
//!
//! A [`Spnf`] is a finite sum of [`SpnfTerm`]s; each term is
//! `Σ x₁ … xₖ . a₁ × a₂ × ⋯ × aₙ` where every `xᵢ` ranges over a *leaf*
//! schema (pair-valued sum variables are split by Lemma 5.1) and every
//! `aⱼ` is an [`Atom`]: a relation application `R(t)`, a predicate
//! application `b(t)`, a tuple equality `t₁ = t₂`, or a negation/squash of
//! a nested normal form.
//!
//! The rewrites used are exactly the trusted axioms of
//! [`crate::lemmas`]; each application is recorded in the supplied
//! [`Trace`]. The normal form enjoys two properties the provers rely on:
//!
//! 1. **Soundness** — every rewrite preserves the denotation of the
//!    expression under every interpretation (property-tested against
//!    [`crate::eval`]).
//! 2. **Canonicity up to bijection** — two normal forms denote equal
//!    functions whenever [`crate::equiv`] finds a sum/product/variable
//!    matching, which suffices for all rewrite rules in the paper.

use crate::lemmas::Lemma;
use crate::syntax::intern::{Interner, UExprId};
use crate::syntax::{Term, UExpr, Var, VarGen};
use relalg::Schema;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// A record of lemma applications — the machine-checkable skeleton of a
/// proof, analogous to the lines of a Coq proof script.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    steps: Vec<(Lemma, String)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one lemma application with a short note.
    pub fn step(&mut self, lemma: Lemma, note: impl Into<String>) {
        self.steps.push((lemma, note.into()));
    }

    /// The recorded steps, in application order.
    pub fn steps(&self) -> &[(Lemma, String)] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends all steps of `other`.
    pub fn extend(&mut self, other: Trace) {
        self.steps.extend(other.steps);
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (lemma, note)) in self.steps.iter().enumerate() {
            writeln!(f, "{:>4}. {lemma}  {note}", i + 1)?;
        }
        Ok(())
    }
}

/// An atomic factor of a normal-form product.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `R(t)` — multiplicity of tuple `t` in relation `R`. Not a
    /// proposition (can exceed 1).
    Rel(String, Term),
    /// `b(t)` — uninterpreted predicate; a proposition.
    Pred(String, Term),
    /// `t₁ = t₂` — tuple equality; a proposition. Canonically oriented
    /// so that the smaller term (by `Ord`) is first.
    Eq(Term, Term),
    /// `¬ s` — negation of a nested normal form; a proposition.
    Not(Spnf),
    /// `‖s‖` — squash of a nested normal form; a proposition.
    Squash(Spnf),
}

impl Atom {
    /// Whether the atom denotes a proposition (a squash type): everything
    /// except relation applications.
    pub fn is_prop(&self) -> bool {
        !matches!(self, Atom::Rel(_, _))
    }

    /// Free variables of the atom.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Atom::Rel(_, t) | Atom::Pred(_, t) => t.free_vars(),
            Atom::Eq(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Atom::Not(s) | Atom::Squash(s) => s.free_vars(),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Rel(r, t) => write!(f, "{r}({t})"),
            Atom::Pred(p, t) => write!(f, "{p}({t})"),
            Atom::Eq(a, b) => write!(f, "({a} = {b})"),
            Atom::Not(s) => write!(f, "¬[{s}]"),
            Atom::Squash(s) => write!(f, "‖{s}‖"),
        }
    }
}

/// One summand: `Σ vars . Π atoms` (an empty product denotes `1`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpnfTerm {
    /// Bound sum variables, all with leaf (or unknown-leaf) schemas.
    pub vars: Vec<Var>,
    /// The product's factors, canonically sorted.
    pub atoms: Vec<Atom>,
}

impl SpnfTerm {
    /// The term `1` (no binders, empty product).
    pub fn one() -> SpnfTerm {
        SpnfTerm {
            vars: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Whether the term is syntactically `Σ vars . 1` — inhabited for any
    /// (nonempty-domain) interpretation.
    pub fn is_trivially_inhabited(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Free variables (bound variables removed).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for a in &self.atoms {
            s.extend(a.free_vars());
        }
        for v in &self.vars {
            s.remove(v);
        }
        s
    }

    /// Whether every atom is a proposition and there are no binders (the
    /// term as a whole is then a proposition).
    pub fn is_prop(&self) -> bool {
        self.vars.is_empty() && self.atoms.iter().all(Atom::is_prop)
    }

    fn sort_atoms(&mut self) {
        self.atoms.sort();
        self.vars.sort();
        self.vars.dedup();
    }
}

impl fmt::Debug for SpnfTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SpnfTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.vars.is_empty() {
            write!(f, "Σ")?;
            for (i, v) in self.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", v.name())?;
            }
            write!(f, ". ")?;
        }
        if self.atoms.is_empty() {
            write!(f, "1")
        } else {
            for (i, a) in self.atoms.iter().enumerate() {
                if i > 0 {
                    write!(f, " × ")?;
                }
                write!(f, "{a}")?;
            }
            Ok(())
        }
    }
}

/// A normal form: a sum of [`SpnfTerm`]s (an empty sum denotes `0`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Spnf {
    /// The summands.
    pub terms: Vec<SpnfTerm>,
}

impl Spnf {
    /// The normal form of `0`.
    pub fn zero() -> Spnf {
        Spnf { terms: Vec::new() }
    }

    /// The normal form of `1`.
    pub fn one() -> Spnf {
        Spnf {
            terms: vec![SpnfTerm::one()],
        }
    }

    /// Whether this is the zero normal form.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Free variables across all summands.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for t in &self.terms {
            s.extend(t.free_vars());
        }
        s
    }

    /// Whether the whole sum denotes a proposition: a single summand that
    /// is itself a proposition, or zero.
    pub fn is_prop(&self) -> bool {
        match self.terms.as_slice() {
            [] => true,
            [t] => t.is_prop(),
            _ => false,
        }
    }

    /// Reifies the normal form back into a [`UExpr`], mainly for display,
    /// round-trip testing, and canonicalized aggregate bodies.
    pub fn reify(&self) -> UExpr {
        UExpr::sum_of(self.terms.iter().map(|t| {
            let product = UExpr::product(t.atoms.iter().map(Atom::reify));
            t.vars
                .iter()
                .rev()
                .fold(product, |acc, v| UExpr::sum(v.clone(), acc))
        }))
    }
}

impl Atom {
    /// Reifies the atom back into a [`UExpr`].
    pub fn reify(&self) -> UExpr {
        match self {
            Atom::Rel(r, t) => UExpr::Rel(r.clone(), t.clone()),
            Atom::Pred(p, t) => UExpr::Pred(p.clone(), t.clone()),
            Atom::Eq(a, b) => UExpr::Eq(a.clone(), b.clone()),
            Atom::Not(s) => UExpr::not(s.reify()),
            Atom::Squash(s) => UExpr::squash(s.reify()),
        }
    }
}

impl fmt::Debug for Spnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Spnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, "  +  ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Normalizes an expression into sum-product normal form, recording every
/// lemma application in `trace`.
///
/// The input's binders are refreshed first, so expressions with shared
/// (cloned) subtrees are handled correctly.
pub fn normalize(e: &UExpr, gen: &mut VarGen, trace: &mut Trace) -> Spnf {
    let e = normalization_input(e, gen);
    norm(&e, gen, trace)
}

/// The exact tree the normalizers hand to the rewriting core:
/// β/η-reduced with all binders refreshed from `gen`. Exposed so batch
/// warm-up passes (e.g. the proving engine's interner seeding) can
/// intern precisely the trees the provers will later intern — seeding
/// anything else (such as the raw denotation) produces nodes the
/// workers never match.
pub fn normalization_input(e: &UExpr, gen: &mut VarGen) -> UExpr {
    gen.reserve_above(e.max_var_id());
    e.beta_reduce_terms().refresh_binders(gen)
}

fn norm(e: &UExpr, gen: &mut VarGen, trace: &mut Trace) -> Spnf {
    match e {
        UExpr::Zero => Spnf::zero(),
        UExpr::One => Spnf::one(),
        UExpr::Add(a, b) => {
            let mut s = norm(a, gen, trace);
            s.terms.extend(norm(b, gen, trace).terms);
            s
        }
        UExpr::Mul(a, b) => {
            let sa = norm(a, gen, trace);
            let sb = norm(b, gen, trace);
            if sa.terms.len() > 1 || sb.terms.len() > 1 {
                trace.step(Lemma::Distrib, "distributing × over +");
            }
            let mut out = Spnf::zero();
            for ta in &sa.terms {
                for tb in &sb.terms {
                    let mut vars = ta.vars.clone();
                    vars.extend(tb.vars.iter().cloned());
                    if !ta.vars.is_empty() || !tb.vars.is_empty() {
                        trace.step(Lemma::SumHoist, "hoisting Σ out of ×");
                    }
                    let mut atoms = ta.atoms.clone();
                    atoms.extend(tb.atoms.iter().cloned());
                    if let Some(t) = simplify_term(vars, atoms, gen, trace) {
                        out.terms.push(t);
                    }
                }
            }
            out
        }
        UExpr::Sum(v, body) => {
            let nb = norm(body, gen, trace);
            if nb.terms.len() > 1 {
                trace.step(Lemma::SumAdd, "distributing Σ over +");
            }
            let mut out = Spnf::zero();
            for (i, t) in nb.terms.iter().enumerate() {
                // Each summand gets its own copy of the binder; α-rename
                // all but the first to keep binder ids unique.
                let (binder, term) = if i == 0 {
                    (v.clone(), t.clone())
                } else {
                    trace.step(Lemma::AlphaRename, "fresh binder per summand");
                    let fresh = gen.fresh(v.schema.clone());
                    (fresh.clone(), term_subst(t, v, &Term::var(&fresh)))
                };
                let mut vars = term.vars.clone();
                let mut atoms = term.atoms.clone();
                push_binder_split(binder, &mut vars, &mut atoms, gen, trace);
                if let Some(t) = simplify_term(vars, atoms, gen, trace) {
                    out.terms.push(t);
                }
            }
            out
        }
        UExpr::Not(a) => {
            let na = norm(a, gen, trace);
            atoms_to_spnf(not_spnf(na, trace), gen, trace)
        }
        UExpr::Squash(a) => {
            let na = norm(a, gen, trace);
            atoms_to_spnf(squash_spnf(na, trace), gen, trace)
        }
        UExpr::Eq(a, b) => match norm_eq(a.clone(), b.clone(), gen, trace) {
            EqSimp::True => Spnf::one(),
            EqSimp::False => Spnf::zero(),
            EqSimp::Atoms(atoms) => atoms_to_spnf(Some(atoms), gen, trace),
        },
        UExpr::Rel(r, t) => {
            let atoms = vec![Atom::Rel(r.clone(), norm_term(t, gen, trace))];
            atoms_to_spnf(Some(atoms), gen, trace)
        }
        UExpr::Pred(p, t) => {
            let atoms = vec![Atom::Pred(p.clone(), norm_term(t, gen, trace))];
            atoms_to_spnf(Some(atoms), gen, trace)
        }
    }
}

/// Converts an optional atom list (None = the whole product is `0`) into
/// a one-term normal form.
fn atoms_to_spnf(atoms: Option<Vec<Atom>>, gen: &mut VarGen, trace: &mut Trace) -> Spnf {
    match atoms {
        None => Spnf::zero(),
        Some(atoms) => match simplify_term(Vec::new(), atoms, gen, trace) {
            None => Spnf::zero(),
            Some(t) => Spnf { terms: vec![t] },
        },
    }
}

/// Normalizes a tuple term: β/η plus recursive normalization of aggregate
/// bodies (reified back to a canonical expression).
fn norm_term(t: &Term, gen: &mut VarGen, trace: &mut Trace) -> Term {
    let t = t.beta_reduce();
    match t {
        Term::Agg(name, v, body) => {
            let nb = norm(&body.beta_reduce_terms(), gen, trace);
            Term::Agg(name, v, Box::new(nb.reify()))
        }
        Term::Pair(a, b) => Term::pair(norm_term(&a, gen, trace), norm_term(&b, gen, trace)),
        Term::Fst(x) => Term::fst(norm_term(&x, gen, trace)),
        Term::Snd(x) => Term::snd(norm_term(&x, gen, trace)),
        Term::Fn(f, args) => Term::Fn(f, args.iter().map(|a| norm_term(a, gen, trace)).collect()),
        other => other,
    }
    .beta_reduce()
}

/// Normalizes the equality `a = b` into atoms (pair-splitting, constant
/// folding, canonical orientation). Returns `None` when the equality is
/// refutable (`0`), and `Some(vec![])` when it is trivially true (`1`).
/// Used by the axiom-saturation pass.
pub(crate) fn eq_atoms(
    a: &Term,
    b: &Term,
    gen: &mut VarGen,
    trace: &mut Trace,
) -> Option<Vec<Atom>> {
    match norm_eq(a.clone(), b.clone(), gen, trace) {
        EqSimp::True => Some(Vec::new()),
        EqSimp::False => None,
        EqSimp::Atoms(atoms) => Some(atoms),
    }
}

/// Result of normalizing an equality.
enum EqSimp {
    True,
    False,
    Atoms(Vec<Atom>),
}

/// Normalizes `a = b`: β/η, reflexivity, constant comparison, and
/// component-wise splitting of pair equalities (valid because tuple types
/// are sets — their identity types are propositions that decompose
/// componentwise).
fn norm_eq(a: Term, b: Term, gen: &mut VarGen, trace: &mut Trace) -> EqSimp {
    let a = norm_term(&a, gen, trace);
    let b = norm_term(&b, gen, trace);
    if a == b {
        trace.step(Lemma::EqRefl, format!("({a} = {a}) ↦ 1"));
        return EqSimp::True;
    }
    if let (Term::Const(x), Term::Const(y)) = (&a, &b) {
        if x != y {
            trace.step(Lemma::EqConstNeq, format!("({a} = {b}) ↦ 0"));
            return EqSimp::False;
        }
    }
    // Unit-schema equality is trivially true.
    if a.schema() == Some(Schema::Empty) && b.schema() == Some(Schema::Empty) {
        trace.step(Lemma::EqRefl, "unit tuples are equal");
        return EqSimp::True;
    }
    // Split equalities at product schemas into components.
    let node_schema = match (a.schema(), b.schema()) {
        (Some(Schema::Node(_, _)), _) | (_, Some(Schema::Node(_, _))) => true,
        _ => matches!((&a, &b), (Term::Pair(_, _), _) | (_, Term::Pair(_, _))),
    };
    if node_schema {
        trace.step(Lemma::EqPairSplit, format!("splitting ({a} = {b})"));
        let a1 = Term::fst(a.clone()).beta_reduce();
        let a2 = Term::snd(a.clone()).beta_reduce();
        let b1 = Term::fst(b.clone()).beta_reduce();
        let b2 = Term::snd(b.clone()).beta_reduce();
        let first = norm_eq(a1, b1, gen, trace);
        let second = norm_eq(a2, b2, gen, trace);
        return match (first, second) {
            (EqSimp::False, _) | (_, EqSimp::False) => EqSimp::False,
            (EqSimp::True, x) | (x, EqSimp::True) => x,
            (EqSimp::Atoms(mut xs), EqSimp::Atoms(ys)) => {
                xs.extend(ys);
                EqSimp::Atoms(xs)
            }
        };
    }
    // Canonical orientation (EqSym).
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    EqSimp::Atoms(vec![Atom::Eq(lo, hi)])
}

/// Splits a binder until all bound variables have leaf schemas
/// (Lemma 5.1), substituting into the atom list.
fn push_binder_split(
    v: Var,
    vars: &mut Vec<Var>,
    atoms: &mut Vec<Atom>,
    gen: &mut VarGen,
    trace: &mut Trace,
) {
    match v.schema.clone() {
        Schema::Empty => {
            trace.step(Lemma::SumPairSplit, "Σ over unit domain");
            let unit = Term::Unit;
            subst_atoms(atoms, &v, &unit, gen, trace);
        }
        Schema::Leaf(_) => vars.push(v),
        Schema::Node(l, r) => {
            trace.step(
                Lemma::SumPairSplit,
                format!("splitting Σ{} over {}", v.name(), v.schema),
            );
            let v1 = gen.fresh(*l);
            let v2 = gen.fresh(*r);
            let repl = Term::pair(Term::var(&v1), Term::var(&v2));
            subst_atoms(atoms, &v, &repl, gen, trace);
            push_binder_split(v1, vars, atoms, gen, trace);
            push_binder_split(v2, vars, atoms, gen, trace);
        }
    }
}

/// Substitutes `var := repl` in every atom, re-normalizing equalities
/// (substitution can expose reflexivity or constant clashes — those are
/// rewritten to `1`/`0` later by `simplify_term`, encoded here as
/// equalities against a sentinel; instead we perform eager resimplification
/// by rebuilding the atom list).
fn subst_atoms(atoms: &mut Vec<Atom>, var: &Var, repl: &Term, gen: &mut VarGen, trace: &mut Trace) {
    let old = std::mem::take(atoms);
    for a in old {
        match atom_subst(a, var, repl, gen, trace) {
            AtomSimp::One => {}
            AtomSimp::Zero => {
                // Mark the whole product as zero with an impossible atom.
                atoms.clear();
                atoms.push(zero_atom());
                return;
            }
            AtomSimp::Atoms(mut new_atoms) => atoms.append(&mut new_atoms),
        }
    }
}

/// The canonical "impossible" atom used internally to mark a dead product
/// during in-place rewriting; `simplify_term` turns it into term removal.
fn zero_atom() -> Atom {
    Atom::Eq(Term::int(0), Term::int(1))
}

fn is_zero_atom(a: &Atom) -> bool {
    match a {
        Atom::Eq(Term::Const(x), Term::Const(y)) => x != y,
        _ => false,
    }
}

/// Result of simplifying a single atom.
enum AtomSimp {
    /// The atom reduced to `1` (drop it).
    One,
    /// The atom reduced to `0` (kill the product).
    Zero,
    /// Replacement atoms.
    Atoms(Vec<Atom>),
}

fn atom_subst(a: Atom, var: &Var, repl: &Term, gen: &mut VarGen, trace: &mut Trace) -> AtomSimp {
    match a {
        Atom::Rel(r, t) => AtomSimp::Atoms(vec![Atom::Rel(
            r,
            norm_term(&t.subst(var, repl), gen, trace),
        )]),
        Atom::Pred(p, t) => AtomSimp::Atoms(vec![Atom::Pred(
            p,
            norm_term(&t.subst(var, repl), gen, trace),
        )]),
        Atom::Eq(x, y) => match norm_eq(x.subst(var, repl), y.subst(var, repl), gen, trace) {
            EqSimp::True => AtomSimp::One,
            EqSimp::False => AtomSimp::Zero,
            EqSimp::Atoms(atoms) => AtomSimp::Atoms(atoms),
        },
        Atom::Not(s) => {
            let s2 = spnf_subst(&s, var, repl, gen, trace);
            match not_spnf(s2, trace) {
                None => AtomSimp::Zero,
                Some(atoms) if atoms.is_empty() => AtomSimp::One,
                Some(atoms) => AtomSimp::Atoms(atoms),
            }
        }
        Atom::Squash(s) => {
            let s2 = spnf_subst(&s, var, repl, gen, trace);
            match squash_spnf(s2, trace) {
                None => AtomSimp::Zero,
                Some(atoms) if atoms.is_empty() => AtomSimp::One,
                Some(atoms) => AtomSimp::Atoms(atoms),
            }
        }
    }
}

/// Substitution inside a nested normal form, with per-term
/// resimplification.
fn spnf_subst(s: &Spnf, var: &Var, repl: &Term, gen: &mut VarGen, trace: &mut Trace) -> Spnf {
    let mut out = Spnf::zero();
    for t in &s.terms {
        let nt = term_subst(t, var, repl);
        if let Some(simplified) = simplify_term(nt.vars, nt.atoms, gen, trace) {
            out.terms.push(simplified);
        }
    }
    out
}

/// Raw (no-resimplification) substitution on a single atom; used for
/// α-renaming and by the deductive prover's witness instantiation.
pub(crate) fn atom_subst_raw(a: &Atom, var: &Var, repl: &Term) -> Atom {
    match a {
        Atom::Rel(r, t) => Atom::Rel(r.clone(), t.subst(var, repl).beta_reduce()),
        Atom::Pred(p, t) => Atom::Pred(p.clone(), t.subst(var, repl).beta_reduce()),
        Atom::Eq(x, y) => Atom::Eq(
            x.subst(var, repl).beta_reduce(),
            y.subst(var, repl).beta_reduce(),
        ),
        Atom::Not(s) => Atom::Not(spnf_subst_raw(s, var, repl)),
        Atom::Squash(s) => Atom::Squash(spnf_subst_raw(s, var, repl)),
    }
}

fn spnf_subst_raw(s: &Spnf, var: &Var, repl: &Term) -> Spnf {
    Spnf {
        terms: s.terms.iter().map(|t| term_subst(t, var, repl)).collect(),
    }
}

/// Raw (no-resimplification) substitution in a term, used for α-renaming.
pub(crate) fn term_subst(t: &SpnfTerm, var: &Var, repl: &Term) -> SpnfTerm {
    SpnfTerm {
        vars: t.vars.clone(),
        atoms: t
            .atoms
            .iter()
            .map(|a| atom_subst_raw(a, var, repl))
            .collect(),
    }
}

/// Negation of a normal form, returning the atoms of the resulting
/// product (`None` = `0`, empty vec = `1`).
fn not_spnf(s: Spnf, trace: &mut Trace) -> Option<Vec<Atom>> {
    if s.terms.is_empty() {
        trace.step(Lemma::NotBase, "¬0 = 1");
        return Some(Vec::new());
    }
    if s.terms.iter().any(SpnfTerm::is_trivially_inhabited) {
        trace.step(Lemma::NotBase, "¬(inhabited) = 0");
        return None;
    }
    if s.terms.len() > 1 {
        trace.step(Lemma::NotAdd, "¬(a + b) = ¬a × ¬b");
    }
    let mut out = Vec::new();
    for t in s.terms {
        // ¬‖x‖ = ¬x and ¬¬x = ‖x‖ on single-atom propositions.
        if t.vars.is_empty() && t.atoms.len() == 1 {
            match &t.atoms[0] {
                Atom::Squash(inner) => {
                    trace.step(Lemma::NotSquash, "¬‖x‖ = ¬x");
                    match not_spnf(inner.clone(), trace) {
                        None => return None,
                        Some(atoms) => {
                            out.extend(atoms);
                            continue;
                        }
                    }
                }
                Atom::Not(inner) => {
                    trace.step(Lemma::NotBase, "¬¬x = ‖x‖");
                    match squash_spnf(inner.clone(), trace) {
                        None => return None,
                        Some(atoms) => {
                            out.extend(atoms);
                            continue;
                        }
                    }
                }
                _ => {}
            }
        }
        out.push(Atom::Not(Spnf { terms: vec![t] }));
    }
    Some(out)
}

/// Squash of a normal form, returning the atoms of the resulting product
/// (`None` = `0`, empty vec = `1`).
fn squash_spnf(s: Spnf, trace: &mut Trace) -> Option<Vec<Atom>> {
    if s.terms.is_empty() {
        trace.step(Lemma::SquashBase, "‖0‖ = 0");
        return None;
    }
    if s.terms.iter().any(SpnfTerm::is_trivially_inhabited) {
        trace.step(Lemma::SquashBase, "‖inhabited‖ = 1");
        return Some(Vec::new());
    }
    // Dedup atoms within each summand: ‖n × n‖ = ‖n‖.
    let mut terms: Vec<SpnfTerm> = s
        .terms
        .into_iter()
        .map(|mut t| {
            let before = t.atoms.len();
            t.sort_atoms();
            t.atoms.dedup();
            if t.atoms.len() != before {
                trace.step(Lemma::SquashDedup, "dedup under ‖·‖");
            }
            t
        })
        .collect();
    // Dedup identical summands: ‖n + n‖ = ‖n‖.
    terms.sort();
    let before = terms.len();
    terms.dedup();
    if terms.len() != before {
        trace.step(Lemma::SquashDedup, "dedup summands under ‖·‖");
    }
    if terms.len() == 1 {
        let t = terms.pop().expect("one term");
        if t.vars.is_empty() {
            // ‖a × b‖ = ‖a‖ × ‖b‖: squash each factor independently.
            trace.step(Lemma::SquashMul, "splitting ‖·‖ over ×");
            let mut out = Vec::new();
            for a in t.atoms {
                if a.is_prop() {
                    trace.step(Lemma::SquashProp, "‖prop‖ = prop");
                    out.push(a);
                } else {
                    out.push(Atom::Squash(Spnf {
                        terms: vec![SpnfTerm {
                            vars: Vec::new(),
                            atoms: vec![a],
                        }],
                    }));
                }
            }
            return Some(out);
        }
        return Some(vec![Atom::Squash(Spnf { terms: vec![t] })]);
    }
    Some(vec![Atom::Squash(Spnf { terms })])
}

/// Simplifies a product: drops `1`s, kills the term on `0` atoms or on a
/// contradiction `A × ¬A`, runs singleton-sum elimination to a fixpoint,
/// and sorts. Returns `None` when the product is `0`.
pub(crate) fn simplify_term(
    mut vars: Vec<Var>,
    mut atoms: Vec<Atom>,
    gen: &mut VarGen,
    trace: &mut Trace,
) -> Option<SpnfTerm> {
    loop {
        if atoms.iter().any(is_zero_atom) {
            trace.step(Lemma::MulZero, "product contains 0");
            return None;
        }
        // Contradiction: both A and ¬A in the product.
        for a in &atoms {
            if let Atom::Not(inner) = a {
                if inner.terms.len() == 1 && inner.terms[0].vars.is_empty() {
                    let negated = &inner.terms[0].atoms;
                    if negated.len() == 1 && atoms.contains(&negated[0]) {
                        trace.step(Lemma::MulZero, "A × ¬A = 0");
                        return None;
                    }
                }
            }
        }
        // Singleton-sum elimination (Lemma 5.2).
        let mut eliminated = false;
        'outer: for vi in 0..vars.len() {
            let v = vars[vi].clone();
            for ai in 0..atoms.len() {
                if let Atom::Eq(x, y) = &atoms[ai] {
                    let repl = if *x == Term::Var(v.clone()) && !y.free_vars().contains(&v) {
                        Some(y.clone())
                    } else if *y == Term::Var(v.clone()) && !x.free_vars().contains(&v) {
                        Some(x.clone())
                    } else {
                        None
                    };
                    if let Some(repl) = repl {
                        trace.step(
                            Lemma::SumSingleton,
                            format!("Σ{} eliminated by {} := {repl}", v.name(), v.name()),
                        );
                        atoms.remove(ai);
                        vars.remove(vi);
                        subst_atoms(&mut atoms, &v, &repl, gen, trace);
                        eliminated = true;
                        break 'outer;
                    }
                }
            }
        }
        if !eliminated {
            break;
        }
    }
    let mut t = SpnfTerm { vars, atoms };
    t.sort_atoms();
    Some(t)
}

/// A memo table for the hash-consed normalizer: an [`Interner`] plus a
/// map from interned node id to the node's normal form (and the trace
/// fragment its normalization records).
///
/// Only **binder-free** nodes (no `Σ`, no aggregate) are memoized. For
/// those, `norm` never draws a fresh variable, so normalization is a
/// pure function of the tree: the cached [`Spnf`] and trace fragment are
/// *exactly* what recomputation would produce. Binder-carrying nodes are
/// recomputed (their results depend on the [`VarGen`] state), but their
/// binder-free subtrees still hit the cache.
///
/// The cache is reusable across many [`normalize_with_cache`] calls —
/// that is the point: the Fig. 8 catalog re-normalizes the same
/// denotation fragments (selection predicates, join conditions, base
/// relation atoms) dozens of times, and each worker of the batch engine
/// carries one cache for all the rules it proves.
#[derive(Clone, Debug, Default)]
pub struct NormCache {
    interner: Interner,
    memo: HashMap<UExprId, MemoEntry>,
    shared: Option<Arc<SharedMemo>>,
    hits: u64,
    misses: u64,
    shared_hits: u64,
}

/// A memoized normalization result: the normal form plus the trace
/// fragment its computation records.
type MemoEntry = (Spnf, Vec<(Lemma, String)>);

/// A memo table shared across the batch engine's workers, with a
/// lock-free read path over the snapshot prefix.
///
/// Per-worker [`NormCache`]s never see each other's work; a catalog
/// whose rules share denotation fragments normalizes each fragment once
/// *per worker*. `SharedMemo` closes that gap for the ids every worker
/// agrees on: each worker's interner is a clone of one frozen snapshot,
/// and arena ids are dense indices, so ids **below the snapshot size**
/// denote the identical tree in every worker. Only those ids are
/// admitted to the shared table (worker-private ids diverge and stay in
/// the private memo), which is why sharing preserves the bit-identical
/// results and traces of the private path: memoized normalization of a
/// binder-free node is a pure function of the tree, no matter which
/// worker computed it.
///
/// Layout: the snapshot prefix is a pre-sized slot array — one
/// [`AtomicPtr`] per snapshot id. A hit is a single `Acquire` load and
/// an entry clone: no lock, no hashing, no contention between engine
/// workers or serve's worker-pinned sessions. A miss publishes its
/// entry with one compare-exchange; losing a publish race just drops
/// the duplicate (both racers computed the same pure function of the
/// same tree). The `Mutex` stripes remain only as the writable
/// overflow for covered ids above the pre-published read layer
/// ([`SharedMemo::for_snapshot_striped`] routes everything through
/// them — kept as the differential reference the property tests
/// compare the lock-free path against).
#[derive(Debug, Default)]
pub struct SharedMemo {
    /// Ids below this bound are snapshot ids, identical in all workers.
    limit: usize,
    /// Lock-free read layer: slot `i` holds id `i`'s entry once some
    /// worker publishes it. Published pointers are immutable until drop.
    slots: Vec<AtomicPtr<MemoEntry>>,
    /// Striped overflow for covered ids ≥ `slots.len()`.
    stripes: Vec<Mutex<HashMap<UExprId, MemoEntry>>>,
}

// SAFETY invariant behind the raw pointers: a slot transitions once,
// from null to a `Box::into_raw` pointer, via compare-exchange; the
// pointee is never mutated or freed while the table is alive, so a
// cloned read after an `Acquire` load always sees a fully initialized
// entry. `Drop` (which has `&mut self`, hence no concurrent readers)
// reclaims the boxes.
impl SharedMemo {
    /// A table covering the snapshot prefix of `interner`: the whole
    /// prefix is the lock-free pre-published read layer; `stripes`
    /// locks back the (here empty) overflow.
    pub fn for_snapshot(interner: &Interner, stripes: usize) -> Arc<SharedMemo> {
        SharedMemo::with_read_layer(interner.uexpr_count(), interner.uexpr_count(), stripes)
    }

    /// The all-striped reference implementation: same coverage, every
    /// access through the Mutex stripes. The lock-free path is
    /// property-tested byte-identical against this.
    pub fn for_snapshot_striped(interner: &Interner, stripes: usize) -> Arc<SharedMemo> {
        SharedMemo::with_read_layer(interner.uexpr_count(), 0, stripes)
    }

    fn with_read_layer(limit: usize, read: usize, stripes: usize) -> Arc<SharedMemo> {
        Arc::new(SharedMemo {
            limit,
            slots: (0..read.min(limit)).map(|_| AtomicPtr::default()).collect(),
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        })
    }

    /// Whether an id is eligible for sharing.
    fn covers(&self, id: UExprId) -> bool {
        id.index() < self.limit
    }

    fn stripe(&self, id: UExprId) -> &Mutex<HashMap<UExprId, MemoEntry>> {
        &self.stripes[id.index() % self.stripes.len()]
    }

    fn get(&self, id: UExprId) -> Option<MemoEntry> {
        match self.slots.get(id.index()) {
            Some(slot) => {
                let p = slot.load(Ordering::Acquire);
                if p.is_null() {
                    None
                } else {
                    // SAFETY: non-null slots hold a published, immutable
                    // `Box` that outlives every reader (see invariant).
                    Some(unsafe { (*p).clone() })
                }
            }
            None => self
                .stripe(id)
                .lock()
                .expect("no poisoned memo stripe")
                .get(&id)
                .cloned(),
        }
    }

    fn insert(&self, id: UExprId, entry: MemoEntry) {
        match self.slots.get(id.index()) {
            Some(slot) => {
                let p = Box::into_raw(Box::new(entry));
                if slot
                    .compare_exchange(
                        std::ptr::null_mut(),
                        p,
                        Ordering::Release,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    // Lost the publish race; the winner's entry is the
                    // same pure-function result, keep it.
                    // SAFETY: `p` came from `Box::into_raw` above and
                    // was never published.
                    drop(unsafe { Box::from_raw(p) });
                }
            }
            None => {
                self.stripe(id)
                    .lock()
                    .expect("no poisoned memo stripe")
                    .entry(id)
                    .or_insert(entry);
            }
        }
    }

    /// Total entries across the read layer and all stripes
    /// (diagnostics).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Acquire).is_null())
            .count()
            + self
                .stripes
                .iter()
                .map(|s| s.lock().expect("no poisoned memo stripe").len())
                .sum::<usize>()
    }

    /// Whether no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for SharedMemo {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: published via `Box::into_raw`, never freed
                // before; `&mut self` excludes concurrent readers.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl NormCache {
    /// An empty cache.
    pub fn new() -> NormCache {
        NormCache::default()
    }

    /// A cache whose interner starts from a shared frozen snapshot (the
    /// batch engine's per-worker seeding path).
    pub fn from_interner(interner: Interner) -> NormCache {
        NormCache {
            interner,
            ..NormCache::default()
        }
    }

    /// [`NormCache::from_interner`] with a cross-worker [`SharedMemo`]
    /// attached. Results and traces are bit-identical to the unshared
    /// path; only the wall-clock cost of repeated normalizations drops.
    pub fn from_interner_shared(interner: Interner, shared: Arc<SharedMemo>) -> NormCache {
        NormCache {
            interner,
            shared: Some(shared),
            ..NormCache::default()
        }
    }

    /// The underlying interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Number of private memo-table hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of memo-table misses (entries computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of hits served by the cross-worker shared table.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }
}

/// [`normalize`], but with subterm-level memoization through `cache`.
///
/// Produces bit-for-bit the same [`Spnf`] *and the same trace steps* as
/// [`normalize`] on the same inputs — property-tested in
/// `tests/prop_intern.rs` — while normalizing every distinct binder-free
/// subterm at most once per cache lifetime.
pub fn normalize_with_cache(
    e: &UExpr,
    gen: &mut VarGen,
    trace: &mut Trace,
    cache: &mut NormCache,
) -> Spnf {
    let _span = telemetry::span("uninomial.normalize");
    let (hits0, misses0, shared0) = (cache.hits, cache.misses, cache.shared_hits);
    let e = normalization_input(e, gen);
    // One interning pass at the root; the recursion below walks the
    // id-DAG, so shared subtrees are traversed (and normalized) once.
    let id = cache.interner.intern(&e);
    let spnf = norm_id(id, gen, trace, cache);
    telemetry::count("memo.norm.hit", cache.hits - hits0);
    telemetry::count("memo.norm.miss", cache.misses - misses0);
    telemetry::count("memo.norm.shared_hit", cache.shared_hits - shared0);
    spnf
}

/// Mirror of [`norm`] over interned node ids: consults the memo table on
/// binder-free nodes and recurses by id everywhere else, so cache hits
/// happen at the deepest shared level without re-walking subtrees.
fn norm_id(id: UExprId, gen: &mut VarGen, trace: &mut Trace, cache: &mut NormCache) -> Spnf {
    // Memoize only nodes whose normalization does real work: compound
    // binder-free nodes and equalities (pair-splitting chains). Trivial
    // atoms (`0`, `1`, `R(t)`, `b(t)`) normalize in O(|t|) anyway — a
    // table lookup per occurrence costs more than recomputing them.
    use crate::syntax::intern::UExprNode;
    let worth_memoizing = matches!(
        cache.interner.uexpr_node(id),
        UExprNode::Add(_, _)
            | UExprNode::Mul(_, _)
            | UExprNode::Not(_)
            | UExprNode::Squash(_)
            | UExprNode::Eq(_, _)
    );
    if worth_memoizing && !cache.interner.has_binder(id) {
        if let Some((spnf, steps)) = cache.memo.get(&id) {
            cache.hits += 1;
            let spnf = spnf.clone();
            for (lemma, note) in steps.clone() {
                trace.step(lemma, note);
            }
            return spnf;
        }
        // Snapshot-prefix ids denote the same tree in every worker, so
        // another worker's entry is exactly what recomputation would
        // produce (normalization of binder-free nodes is pure); copy it
        // into the private memo to skip the lock next time.
        if let Some(shared) = cache.shared.as_ref().filter(|s| s.covers(id)) {
            if let Some((spnf, steps)) = shared.get(id) {
                cache.shared_hits += 1;
                for (lemma, note) in steps.iter().cloned() {
                    trace.step(lemma, note);
                }
                cache.memo.insert(id, (spnf.clone(), steps));
                return spnf;
            }
        }
        cache.misses += 1;
        let mut fragment = Trace::new();
        let spnf = norm_id_arms(id, gen, &mut fragment, cache);
        let entry = (spnf.clone(), fragment.steps().to_vec());
        if let Some(shared) = cache.shared.as_ref().filter(|s| s.covers(id)) {
            shared.insert(id, entry.clone());
        }
        cache.memo.insert(id, entry);
        trace.extend(fragment);
        return spnf;
    }
    norm_id_arms(id, gen, trace, cache)
}

/// The structural arms of [`norm_id`]: identical rewriting logic to
/// [`norm`], with child subtrees addressed by id.
fn norm_id_arms(id: UExprId, gen: &mut VarGen, trace: &mut Trace, cache: &mut NormCache) -> Spnf {
    use crate::syntax::intern::UExprNode;
    // Nodes are small (ids plus a name/binder); cloning one sidesteps
    // holding a borrow of the interner across the `&mut cache` recursion.
    match cache.interner.uexpr_node(id).clone() {
        UExprNode::Zero => Spnf::zero(),
        UExprNode::One => Spnf::one(),
        // Atoms have no `UExpr` children to memoize; `norm` handles them
        // directly (including aggregate bodies inside their terms, which
        // sit under a binder and are recomputed by design). Extraction
        // runs once per distinct atom — the result is memoized under the
        // atom's own id whenever it is binder-free.
        UExprNode::Eq(_, _) | UExprNode::Rel(_, _) | UExprNode::Pred(_, _) => {
            let e = cache.interner.extract(id);
            norm(&e, gen, trace)
        }
        UExprNode::Add(a, b) => {
            let mut s = norm_id(a, gen, trace, cache);
            s.terms.extend(norm_id(b, gen, trace, cache).terms);
            s
        }
        UExprNode::Mul(a, b) => {
            let sa = norm_id(a, gen, trace, cache);
            let sb = norm_id(b, gen, trace, cache);
            if sa.terms.len() > 1 || sb.terms.len() > 1 {
                trace.step(Lemma::Distrib, "distributing × over +");
            }
            let mut out = Spnf::zero();
            for ta in &sa.terms {
                for tb in &sb.terms {
                    let mut vars = ta.vars.clone();
                    vars.extend(tb.vars.iter().cloned());
                    if !ta.vars.is_empty() || !tb.vars.is_empty() {
                        trace.step(Lemma::SumHoist, "hoisting Σ out of ×");
                    }
                    let mut atoms = ta.atoms.clone();
                    atoms.extend(tb.atoms.iter().cloned());
                    if let Some(t) = simplify_term(vars, atoms, gen, trace) {
                        out.terms.push(t);
                    }
                }
            }
            out
        }
        UExprNode::Sum(v, body) => {
            let nb = norm_id(body, gen, trace, cache);
            if nb.terms.len() > 1 {
                trace.step(Lemma::SumAdd, "distributing Σ over +");
            }
            let mut out = Spnf::zero();
            for (i, t) in nb.terms.iter().enumerate() {
                let (binder, term) = if i == 0 {
                    (v.clone(), t.clone())
                } else {
                    trace.step(Lemma::AlphaRename, "fresh binder per summand");
                    let fresh = gen.fresh(v.schema.clone());
                    (fresh.clone(), term_subst(t, &v, &Term::var(&fresh)))
                };
                let mut vars = term.vars.clone();
                let mut atoms = term.atoms.clone();
                push_binder_split(binder, &mut vars, &mut atoms, gen, trace);
                if let Some(t) = simplify_term(vars, atoms, gen, trace) {
                    out.terms.push(t);
                }
            }
            out
        }
        UExprNode::Not(a) => {
            let na = norm_id(a, gen, trace, cache);
            atoms_to_spnf(not_spnf(na, trace), gen, trace)
        }
        UExprNode::Squash(a) => {
            let na = norm_id(a, gen, trace, cache);
            atoms_to_spnf(squash_spnf(na, trace), gen, trace)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::BaseType;

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn setup() -> (VarGen, Trace) {
        (VarGen::new(), Trace::new())
    }

    #[test]
    fn constants_normalize() {
        let (mut g, mut tr) = setup();
        assert!(normalize(&UExpr::Zero, &mut g, &mut tr).is_zero());
        assert_eq!(normalize(&UExpr::One, &mut g, &mut tr), Spnf::one());
        assert!(normalize(&UExpr::mul(UExpr::One, UExpr::Zero), &mut g, &mut tr).is_zero());
        assert_eq!(
            normalize(&UExpr::add(UExpr::Zero, UExpr::One), &mut g, &mut tr),
            Spnf::one()
        );
    }

    #[test]
    fn fig1_distributivity() {
        // (R t + S t) × b t  normalizes to the same form as
        // R t × b t + S t × b t.
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let s = UExpr::rel("S", Term::var(&t));
        let b = UExpr::pred("b", Term::var(&t));
        let lhs = UExpr::mul(UExpr::add(r.clone(), s.clone()), b.clone());
        let rhs = UExpr::add(UExpr::mul(r, b.clone()), UExpr::mul(s, b));
        let nl = normalize(&lhs, &mut g, &mut tr);
        let nr = normalize(&rhs, &mut g, &mut tr);
        assert_eq!(nl, nr);
        assert_eq!(nl.terms.len(), 2);
    }

    #[test]
    fn eq_refl_vanishes() {
        let (mut g, mut tr) = setup();
        let v = g.fresh(leaf_int());
        let e = UExpr::eq(Term::var(&v), Term::var(&v));
        assert_eq!(normalize(&e, &mut g, &mut tr), Spnf::one());
    }

    #[test]
    fn eq_distinct_constants_vanish() {
        let (mut g, mut tr) = setup();
        let e = UExpr::eq(Term::int(1), Term::int(2));
        assert!(normalize(&e, &mut g, &mut tr).is_zero());
        let e = UExpr::eq(Term::int(3), Term::int(3));
        assert_eq!(normalize(&e, &mut g, &mut tr), Spnf::one());
    }

    #[test]
    fn eq_pair_splits() {
        let (mut g, mut tr) = setup();
        let a = g.fresh(leaf_int());
        let b = g.fresh(leaf_int());
        let e = UExpr::eq(
            Term::pair(Term::var(&a), Term::int(1)),
            Term::pair(Term::var(&b), Term::int(1)),
        );
        let n = normalize(&e, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert_eq!(n.terms[0].atoms.len(), 1, "{n}");
        assert!(matches!(&n.terms[0].atoms[0], Atom::Eq(_, _)));
    }

    #[test]
    fn eq_orientation_is_canonical() {
        let (mut g, mut tr) = setup();
        let a = g.fresh(leaf_int());
        let b = g.fresh(leaf_int());
        let e1 = UExpr::eq(Term::var(&a), Term::var(&b));
        let e2 = UExpr::eq(Term::var(&b), Term::var(&a));
        assert_eq!(
            normalize(&e1, &mut g, &mut tr),
            normalize(&e2, &mut g, &mut tr)
        );
    }

    #[test]
    fn singleton_sum_eliminates() {
        // Σx. (x = 3) × R(x)  =  R(3)   (Lemma 5.2)
        let (mut g, mut tr) = setup();
        let x = g.fresh(leaf_int());
        let e = UExpr::sum(
            x.clone(),
            UExpr::mul(
                UExpr::eq(Term::var(&x), Term::int(3)),
                UExpr::rel("R", Term::var(&x)),
            ),
        );
        let n = normalize(&e, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert!(n.terms[0].vars.is_empty(), "{n}");
        assert_eq!(n.terms[0].atoms, vec![Atom::Rel("R".into(), Term::int(3))]);
    }

    #[test]
    fn pair_sum_splits() {
        // Σx:(int × int). R(x)  becomes  Σx1,x2. R((x1,x2))  (Lemma 5.1)
        let (mut g, mut tr) = setup();
        let x = g.fresh(Schema::node(leaf_int(), leaf_int()));
        let e = UExpr::sum(x.clone(), UExpr::rel("R", Term::var(&x)));
        let n = normalize(&e, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert_eq!(n.terms[0].vars.len(), 2, "{n}");
        for v in &n.terms[0].vars {
            assert!(matches!(v.schema, Schema::Leaf(_)));
        }
    }

    #[test]
    fn sum_over_unit_domain_disappears() {
        let (mut g, mut tr) = setup();
        let x = g.fresh(Schema::Empty);
        let e = UExpr::sum(x.clone(), UExpr::rel("R", Term::var(&x)));
        let n = normalize(&e, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert!(n.terms[0].vars.is_empty());
        assert_eq!(n.terms[0].atoms, vec![Atom::Rel("R".into(), Term::Unit)]);
    }

    #[test]
    fn squash_laws() {
        let (mut g, mut tr) = setup();
        assert!(normalize(&UExpr::squash(UExpr::Zero), &mut g, &mut tr).is_zero());
        assert_eq!(
            normalize(&UExpr::squash(UExpr::One), &mut g, &mut tr),
            Spnf::one()
        );
        // ‖R(t) × R(t)‖ = ‖R(t)‖
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let lhs = UExpr::squash(UExpr::mul(r.clone(), r.clone()));
        let rhs = UExpr::squash(r);
        assert_eq!(
            normalize(&lhs, &mut g, &mut tr),
            normalize(&rhs, &mut g, &mut tr)
        );
    }

    #[test]
    fn squash_of_squash_collapses() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let once = UExpr::squash(r.clone());
        let twice = UExpr::squash(UExpr::squash(r));
        assert_eq!(
            normalize(&once, &mut g, &mut tr),
            normalize(&twice, &mut g, &mut tr)
        );
    }

    #[test]
    fn squash_of_prop_is_identity() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let p = UExpr::pred("b", Term::var(&t));
        assert_eq!(
            normalize(&UExpr::squash(p.clone()), &mut g, &mut tr),
            normalize(&p, &mut g, &mut tr)
        );
    }

    #[test]
    fn negation_laws() {
        let (mut g, mut tr) = setup();
        assert_eq!(
            normalize(&UExpr::not(UExpr::Zero), &mut g, &mut tr),
            Spnf::one()
        );
        assert!(normalize(&UExpr::not(UExpr::One), &mut g, &mut tr).is_zero());
        // ¬¬¬x = ¬x
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let n1 = UExpr::not(r.clone());
        let n3 = UExpr::not(UExpr::not(UExpr::not(r)));
        assert_eq!(
            normalize(&n1, &mut g, &mut tr),
            normalize(&n3, &mut g, &mut tr)
        );
    }

    #[test]
    fn double_negation_is_squash() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let nn = UExpr::not(UExpr::not(r.clone()));
        let sq = UExpr::squash(r);
        assert_eq!(
            normalize(&nn, &mut g, &mut tr),
            normalize(&sq, &mut g, &mut tr)
        );
    }

    #[test]
    fn not_distributes_over_add() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let s = UExpr::rel("S", Term::var(&t));
        let lhs = UExpr::not(UExpr::add(r.clone(), s.clone()));
        let rhs = UExpr::mul(UExpr::not(r), UExpr::not(s));
        assert_eq!(
            normalize(&lhs, &mut g, &mut tr),
            normalize(&rhs, &mut g, &mut tr)
        );
    }

    #[test]
    fn contradiction_is_zero() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let p = UExpr::pred("b", Term::var(&t));
        let e = UExpr::mul(p.clone(), UExpr::not(p));
        assert!(normalize(&e, &mut g, &mut tr).is_zero());
    }

    #[test]
    fn cloned_subtrees_get_distinct_binders() {
        let (mut g, mut tr) = setup();
        let x = g.fresh(leaf_int());
        let q = UExpr::sum(x.clone(), UExpr::rel("R", Term::var(&x)));
        // q × q with shared binder ids must not confuse the normalizer.
        let e = UExpr::mul(q.clone(), q);
        let n = normalize(&e, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert_eq!(n.terms[0].vars.len(), 2);
        let ids: BTreeSet<u32> = n.terms[0].vars.iter().map(|v| v.id).collect();
        assert_eq!(ids.len(), 2, "binders must be distinct: {n}");
    }

    #[test]
    fn mul_is_commutative_after_normalization() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let b = UExpr::pred("b", Term::var(&t));
        let lhs = UExpr::mul(r.clone(), b.clone());
        let rhs = UExpr::mul(b, r);
        assert_eq!(
            normalize(&lhs, &mut g, &mut tr),
            normalize(&rhs, &mut g, &mut tr)
        );
    }

    #[test]
    fn selection_pushdown_shape() {
        // Sec 5.1.1: b1(g,t) × b2(g,t) × R(t)  vs  b2(g,t) × (b1(g,t) × R(t))
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let b1 = UExpr::pred("b1", Term::var(&t));
        let b2 = UExpr::pred("b2", Term::var(&t));
        let r = UExpr::rel("R", Term::var(&t));
        let lhs = UExpr::mul(UExpr::mul(b1.clone(), b2.clone()), r.clone());
        let rhs = UExpr::mul(b2, UExpr::mul(b1, r));
        assert_eq!(
            normalize(&lhs, &mut g, &mut tr),
            normalize(&rhs, &mut g, &mut tr)
        );
    }

    #[test]
    fn reify_roundtrips() {
        let (mut g, mut tr) = setup();
        let x = g.fresh(Schema::node(leaf_int(), leaf_int()));
        let e = UExpr::sum(
            x.clone(),
            UExpr::mul(
                UExpr::rel("R", Term::var(&x)),
                UExpr::squash(UExpr::rel("S", Term::fst(Term::var(&x)))),
            ),
        );
        let n1 = normalize(&e, &mut g, &mut tr);
        let n2 = normalize(&n1.reify(), &mut g, &mut tr);
        // Round-tripping may rename binders, so compare modulo count/shape.
        assert_eq!(n1.terms.len(), n2.terms.len());
        assert_eq!(n1.terms[0].vars.len(), n2.terms[0].vars.len());
        assert_eq!(n1.terms[0].atoms.len(), n2.terms[0].atoms.len());
    }

    #[test]
    fn trace_records_lemmas() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let s = UExpr::rel("S", Term::var(&t));
        let b = UExpr::pred("b", Term::var(&t));
        let lhs = UExpr::mul(UExpr::add(r, s), b);
        normalize(&lhs, &mut g, &mut tr);
        assert!(tr.steps().iter().any(|(l, _)| *l == Lemma::Distrib));
        let printed = tr.to_string();
        assert!(printed.contains("distributivity"), "{printed}");
    }

    #[test]
    fn exists_becomes_squash_atom() {
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let e = UExpr::squash(UExpr::sum(t.clone(), UExpr::rel("R", Term::var(&t))));
        let n = normalize(&e, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert_eq!(n.terms[0].atoms.len(), 1);
        match &n.terms[0].atoms[0] {
            Atom::Squash(inner) => {
                assert_eq!(inner.terms.len(), 1);
                assert_eq!(inner.terms[0].vars.len(), 1);
            }
            other => panic!("expected squash atom, got {other}"),
        }
    }

    #[test]
    fn fig2_equational_core() {
        // ‖Σt1,t2. (t=a(t1)) × (a(t1)=a(t2)) × R(t1) × R(t2)‖ has, after
        // congruence-free normalization, the same support as
        // ‖Σt1. (t=a(t1)) × R(t1)‖ — full equivalence needs the deductive
        // prover; here we only check both normalize without panicking and
        // produce squash atoms.
        let (mut g, mut tr) = setup();
        let t = g.fresh(leaf_int());
        let t1 = g.fresh(leaf_int());
        let t2 = g.fresh(leaf_int());
        let a = |v: &Var| Term::func("a", vec![Term::var(v)]);
        let lhs = UExpr::squash(UExpr::sum(
            t1.clone(),
            UExpr::sum(
                t2.clone(),
                UExpr::product([
                    UExpr::eq(Term::var(&t), a(&t1)),
                    UExpr::eq(a(&t1), a(&t2)),
                    UExpr::rel("R", Term::var(&t1)),
                    UExpr::rel("R", Term::var(&t2)),
                ]),
            ),
        ));
        let n = normalize(&lhs, &mut g, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert!(matches!(n.terms[0].atoms[0], Atom::Squash(_)));
    }
}
