//! Tactic orchestration: the top-level equivalence prover.
//!
//! [`prove_eq`] mirrors the DOPCERT proof strategy (Sec. 5): apply
//! functional extensionality, normalize both denotations (the equational
//! phase of Fig. 1/Fig. 2), then try in order:
//!
//! 1. syntactic equality of normal forms;
//! 2. equational matching up to AC/bijection/congruence/absorption
//!    ([`crate::equiv`]);
//! 3. for propositional goals, the deductive bi-implication prover
//!    ([`crate::deduce`]), justified by `(A ↔ B) ⇒ (‖A‖ = ‖B‖)`.
//!
//! A success returns a [`Proof`] carrying the machine-checkable
//! [`ProofTrace`]; a failure returns both normal forms for inspection
//! (the typical counterexample-hunting workflow).

use crate::deduce::{self, Ctx};
use crate::equiv;
use crate::lemmas::Lemma;
use crate::normalize::{normalize, normalize_with_cache, NormCache, Spnf, Trace};
use crate::syntax::{UExpr, VarGen};
use std::fmt;

/// Re-export: proof traces are [`Trace`]s.
pub type ProofTrace = Trace;

/// Which tactic closed the proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Normal forms were syntactically identical.
    Syntactic,
    /// Equational matching (AC + bijection + congruence + absorption).
    Equational,
    /// Deductive bi-implication on propositional goals.
    Deductive,
    /// Equality saturation: the `egraph` crate's budgeted proof search
    /// over rewrites compiled from the [`Lemma`] catalog. The tactic
    /// lives downstream (the solver depends on this crate); this variant
    /// is how its proofs are reported and traced.
    Saturate,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Syntactic => write!(f, "syntactic"),
            Method::Equational => write!(f, "equational"),
            Method::Deductive => write!(f, "deductive"),
            Method::Saturate => write!(f, "saturation"),
        }
    }
}

/// A successful equivalence proof.
#[derive(Clone, Debug)]
pub struct Proof {
    method: Method,
    trace: Trace,
    lhs_nf: Spnf,
    rhs_nf: Spnf,
}

impl Proof {
    /// Assembles a proof from its parts — the constructor used by
    /// external tactics (notably the `egraph` saturation solver) whose
    /// search produces a [`Trace`] of trusted-lemma applications.
    pub fn new(method: Method, trace: Trace, lhs_nf: Spnf, rhs_nf: Spnf) -> Proof {
        Proof {
            method,
            trace,
            lhs_nf,
            rhs_nf,
        }
    }

    /// Which tactic closed the proof.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The lemma-application trace (the "proof script").
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of lemma applications — the analog of proof LOC in Fig. 8.
    pub fn steps(&self) -> usize {
        self.trace.len()
    }

    /// Normal form of the left-hand side.
    pub fn lhs_normal_form(&self) -> &Spnf {
        &self.lhs_nf
    }

    /// Normal form of the right-hand side.
    pub fn rhs_normal_form(&self) -> &Spnf {
        &self.rhs_nf
    }
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "proved by the {} tactic in {} steps",
            self.method,
            self.steps()
        )?;
        writeln!(f, "  lhs ⇓ {}", self.lhs_nf)?;
        writeln!(f, "  rhs ⇓ {}", self.rhs_nf)?;
        write!(f, "{}", self.trace)
    }
}

/// Failure to prove (not a disproof — equivalence of SQL queries is
/// undecidable in general, Sec. 5.2 / Fig. 9).
#[derive(Clone, Debug)]
pub struct ProveError {
    /// Pretty-printed normal form of the left-hand side.
    pub lhs_nf: String,
    /// Pretty-printed normal form of the right-hand side.
    pub rhs_nf: String,
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not proved: normal forms differ\n  lhs ⇓ {}\n  rhs ⇓ {}",
            self.lhs_nf, self.rhs_nf
        )
    }
}

impl std::error::Error for ProveError {}

/// Proves `lhs = rhs` as UniNomial expressions.
///
/// # Errors
///
/// Returns [`ProveError`] when no tactic closes the goal; the normal forms
/// are included for debugging. This is *not* a semantic disproof.
///
/// # Example
///
/// ```
/// use uninomial::syntax::{Term, UExpr, VarGen};
/// use relalg::{BaseType, Schema};
/// let mut gen = VarGen::new();
/// let t = gen.fresh(Schema::leaf(BaseType::Int));
/// let r = UExpr::rel("R", Term::var(&t));
/// let proof = uninomial::prove_eq(
///     &UExpr::mul(r.clone(), UExpr::One),
///     &r,
///     &mut gen,
/// ).expect("R × 1 = R");
/// assert_eq!(proof.method(), uninomial::prove::Method::Syntactic);
/// ```
pub fn prove_eq(lhs: &UExpr, rhs: &UExpr, gen: &mut VarGen) -> Result<Proof, ProveError> {
    prove_eq_with_axioms(lhs, rhs, &[], gen)
}

/// Proves `lhs = rhs` under assumed integrity constraints
/// ([`crate::axioms::RelAxiom`], Sec. 4.2) — required by the index
/// rewrite rules of Sec. 5.1.4, whose validity depends on a key
/// constraint.
///
/// # Errors
///
/// Returns [`ProveError`] when no tactic closes the goal.
pub fn prove_eq_with_axioms(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[crate::axioms::RelAxiom],
    gen: &mut VarGen,
) -> Result<Proof, ProveError> {
    prove_eq_impl(lhs, rhs, axioms, gen, None)
}

/// [`prove_eq_with_axioms`] with subterm-memoized normalization through
/// a reusable [`NormCache`].
///
/// Same proofs, same traces — the cache only removes repeated work when
/// structurally identical binder-free subterms recur (within one goal or
/// across goals sharing the cache). This is the entry point the batch
/// proving engine uses, one cache per worker thread.
///
/// # Errors
///
/// Returns [`ProveError`] when no tactic closes the goal.
pub fn prove_eq_cached(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[crate::axioms::RelAxiom],
    gen: &mut VarGen,
    cache: &mut NormCache,
) -> Result<Proof, ProveError> {
    prove_eq_impl(lhs, rhs, axioms, gen, Some(cache))
}

fn prove_eq_impl(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[crate::axioms::RelAxiom],
    gen: &mut VarGen,
    cache: Option<&mut NormCache>,
) -> Result<Proof, ProveError> {
    let mut trace = Trace::new();
    trace.step(
        Lemma::FunExt,
        "reduce query equality to pointwise equality of denotations",
    );
    let (nl, nr) = match cache {
        Some(cache) => (
            normalize_with_cache(lhs, gen, &mut trace, cache),
            normalize_with_cache(rhs, gen, &mut trace, cache),
        ),
        None => (
            normalize(lhs, gen, &mut trace),
            normalize(rhs, gen, &mut trace),
        ),
    };
    let nl = crate::axioms::saturate(&nl, axioms, gen, &mut trace);
    let nr = crate::axioms::saturate(&nr, axioms, gen, &mut trace);
    if nl == nr {
        return Ok(Proof {
            method: Method::Syntactic,
            trace,
            lhs_nf: nl,
            rhs_nf: nr,
        });
    }
    // Equational matching.
    {
        let mut attempt = trace.clone();
        let mut ctx = Ctx::new(gen, &mut attempt);
        if equiv::equiv(&nl, &nr, &[], &mut ctx) {
            return Ok(Proof {
                method: Method::Equational,
                trace: attempt,
                lhs_nf: nl,
                rhs_nf: nr,
            });
        }
    }
    // Deductive bi-implication for propositional goals.
    if nl.is_prop() && nr.is_prop() {
        let mut attempt = trace.clone();
        let mut ctx = Ctx::new(gen, &mut attempt);
        if deduce::prove_iff(&nl, &nr, &[], &mut ctx) {
            return Ok(Proof {
                method: Method::Deductive,
                trace: attempt,
                lhs_nf: nl,
                rhs_nf: nr,
            });
        }
    }
    Err(ProveError {
        lhs_nf: nl.to_string(),
        rhs_nf: nr.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Term, Var};
    use relalg::{BaseType, Schema};

    fn leaf_int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    #[test]
    fn fig1_union_selection_distributes() {
        // λt. (R t + S t) × b t  =  λt. R t × b t + S t × b t
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let s = UExpr::rel("S", Term::var(&t));
        let b = UExpr::pred("b", Term::var(&t));
        let lhs = UExpr::mul(UExpr::add(r.clone(), s.clone()), b.clone());
        let rhs = UExpr::add(UExpr::mul(r, b.clone()), UExpr::mul(s, b));
        let proof = prove_eq(&lhs, &rhs, &mut g).expect("Fig. 1 rule");
        assert_eq!(proof.method(), Method::Syntactic);
    }

    #[test]
    fn fig2_self_join_distinct() {
        // ‖Σt1,t2. (t = a t1)(a t1 = a t2) R t1 R t2‖ = ‖Σt0. (t = a t0) R t0‖
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let t0 = g.fresh(leaf_int());
        let t1 = g.fresh(leaf_int());
        let t2 = g.fresh(leaf_int());
        let a = |v: &Var| Term::func("a", vec![Term::var(v)]);
        let lhs = UExpr::squash(UExpr::sum(
            t1.clone(),
            UExpr::sum(
                t2.clone(),
                UExpr::product([
                    UExpr::eq(Term::var(&t), a(&t1)),
                    UExpr::eq(a(&t1), a(&t2)),
                    UExpr::rel("R", Term::var(&t1)),
                    UExpr::rel("R", Term::var(&t2)),
                ]),
            ),
        ));
        let rhs = UExpr::squash(UExpr::sum(
            t0.clone(),
            UExpr::mul(
                UExpr::eq(Term::var(&t), a(&t0)),
                UExpr::rel("R", Term::var(&t0)),
            ),
        ));
        let proof = prove_eq(&lhs, &rhs, &mut g).expect("Fig. 2 rule");
        // The equational tactic's squash-entailment already performs the
        // witness search, so either method may close the goal.
        assert!(matches!(
            proof.method(),
            Method::Equational | Method::Deductive
        ));
        assert!(proof.steps() > 1);
    }

    #[test]
    fn unequal_relations_fail() {
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let s = UExpr::rel("S", Term::var(&t));
        let err = prove_eq(&r, &s, &mut g).unwrap_err();
        assert!(err.to_string().contains("not proved"));
    }

    #[test]
    fn excluded_middle_fails_as_it_should() {
        // R t × ‖b t + ¬(b t)‖ vs R t: with b uninterpreted this *is*
        // provable classically, but ¬ in UniNomial is constructive over
        // props, so the prover accepts it (b is a prop: b + ¬b is
        // inhabited iff decidable — our Pred atoms are decidable bools).
        // What must NOT be provable is the 3-valued-logic variant, which
        // the hottsql crate models with an uninterpreted *function* —
        // checked there. Here: ‖b + ¬b‖ entailment requires a case split
        // the prover cannot witness, so the proof fails (conservative).
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let b = UExpr::pred("b", Term::var(&t));
        let lhs = UExpr::mul(
            r.clone(),
            UExpr::squash(UExpr::add(b.clone(), UExpr::not(b))),
        );
        assert!(prove_eq(&lhs, &r, &mut g).is_err());
    }

    #[test]
    fn proof_display_shows_method_and_steps() {
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let lhs = UExpr::mul(r.clone(), UExpr::One);
        let proof = prove_eq(&lhs, &r, &mut g).unwrap();
        let shown = proof.to_string();
        assert!(shown.contains("syntactic"), "{shown}");
        assert!(shown.contains("lhs ⇓"), "{shown}");
    }

    #[test]
    fn distinct_projection_idempotent() {
        // ‖‖R t‖‖ = ‖R t‖.
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let proof = prove_eq(
            &UExpr::squash(UExpr::squash(r.clone())),
            &UExpr::squash(r),
            &mut g,
        )
        .unwrap();
        assert_eq!(proof.method(), Method::Syntactic);
    }

    #[test]
    fn key_axiom_enables_self_join_identity() {
        // Σt2. R(t) × R(t2) × (k t = k t2) = R(t), with key(k)(R) —
        // the symbolic core of the Sec. 5.1.4 index rules.
        use crate::axioms::RelAxiom;
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let t2 = g.fresh(leaf_int());
        let k = |v: &Var| Term::func("k", vec![Term::var(v)]);
        let lhs = UExpr::sum(
            t2.clone(),
            UExpr::product([
                UExpr::rel("R", Term::var(&t)),
                UExpr::rel("R", Term::var(&t2)),
                UExpr::eq(k(&t), k(&t2)),
            ]),
        );
        let rhs = UExpr::rel("R", Term::var(&t));
        // Unprovable without the axiom…
        assert!(prove_eq(&lhs, &rhs, &mut g).is_err());
        // …provable with it.
        let axioms = vec![RelAxiom::Key {
            rel: "R".into(),
            key_fn: "k".into(),
        }];
        let proof = prove_eq_with_axioms(&lhs, &rhs, &axioms, &mut g).expect("key axiom closes it");
        assert!(proof
            .trace()
            .steps()
            .iter()
            .any(|(l, _)| *l == Lemma::Absorption));
    }

    #[test]
    fn or_of_exists_splits() {
        // ‖ ‖ΣS‖ + ‖ΣT‖ ‖ = ‖Σ(S + T)‖ — the subquery rule's core.
        let mut g = VarGen::new();
        let s1 = g.fresh(leaf_int());
        let s2 = g.fresh(leaf_int());
        let s3 = g.fresh(leaf_int());
        let lhs = UExpr::squash(UExpr::add(
            UExpr::squash(UExpr::sum(s1.clone(), UExpr::rel("S", Term::var(&s1)))),
            UExpr::squash(UExpr::sum(s2.clone(), UExpr::rel("T", Term::var(&s2)))),
        ));
        let rhs = UExpr::squash(UExpr::sum(
            s3.clone(),
            UExpr::add(
                UExpr::rel("S", Term::var(&s3)),
                UExpr::rel("T", Term::var(&s3)),
            ),
        ));
        assert!(prove_eq(&lhs, &rhs, &mut g).is_ok());
    }

    #[test]
    fn except_self_is_zero() {
        // R t × (‖R t‖ → 0) = 0.
        let mut g = VarGen::new();
        let t = g.fresh(leaf_int());
        let r = UExpr::rel("R", Term::var(&t));
        let lhs = UExpr::mul(r.clone(), UExpr::not(UExpr::squash(r)));
        let proof = prove_eq(&lhs, &UExpr::Zero, &mut g).unwrap();
        assert_eq!(proof.method(), Method::Syntactic);
    }
}
