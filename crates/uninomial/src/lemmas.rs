//! The trusted axiom catalog.
//!
//! Every rewrite performed by the normalizer and the provers is an
//! instance of one of these named lemmas. Each is a theorem of homotopy
//! type theory about the structure `(U, 0, 1, +, ×, ·→0, ‖·‖, Σ)` of
//! Definition 3.1 (most are stated explicitly in the paper; the rest are
//! the semiring laws). The concrete-evaluation oracle in
//! [`crate::eval`] property-tests every axiom against random
//! interpretations — see `tests` in this module and in `eval`.
//!
//! Proof traces ([`crate::prove::ProofTrace`]) reference these by the
//! [`Lemma`] enum, making each proof auditable step by step.

use std::fmt;

/// A named trusted axiom (lemma) of the UniNomial algebra.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lemma {
    // --- commutative semiring laws (Definition 3.1) ---
    /// `a + b = b + a`, `(a + b) + c = a + (b + c)`, `a + 0 = a`.
    AddAcu,
    /// `a × b = b × a`, `(a × b) × c = a × (b × c)`, `a × 1 = a`.
    MulAcu,
    /// `a × 0 = 0`.
    MulZero,
    /// `a × (b + c) = a × b + a × c`.
    Distrib,
    // --- infinitary sums ---
    /// `Σx.(f x + g x) = Σx.f x + Σx.g x`.
    SumAdd,
    /// `a × Σx.f x = Σx.(a × f x)` when `x ∉ fv(a)`.
    SumHoist,
    /// `Σx.0 = 0`.
    SumZero,
    /// Lemma 5.1: `Σ_{x:A×B} P x = Σ_{x₁:A} Σ_{x₂:B} P (x₁,x₂)`,
    /// plus `Σ_{x:1} P x = P ()`.
    SumPairSplit,
    /// Lemma 5.2 (singleton sums): `Σx.(x = e) × P x = P e`
    /// when `x ∉ fv(e)`.
    SumSingleton,
    // --- squash / negation (propositions) ---
    /// `‖0‖ = 0`, `‖1‖ = 1`, `‖‖n‖‖ = ‖n‖`.
    SquashBase,
    /// `‖n × n‖ = ‖n‖` — more generally duplicate factors collapse under
    /// squash.
    SquashDedup,
    /// `‖a‖ × ‖b‖ = ‖a × b‖` and a product of propositions is a
    /// proposition.
    SquashMul,
    /// Squash of an already-propositional expression is the expression.
    SquashProp,
    /// `(0 → 0) = 1` and `(n → 0) = 0` for inhabited `n`; `¬¬¬n = ¬n`.
    NotBase,
    /// `¬(a + b) = ¬a × ¬b`.
    NotAdd,
    /// `¬‖n‖ = ¬n`.
    NotSquash,
    /// Lemma 5.3: `(T → P) ⇒ (T × P = T)` for propositional `P` —
    /// absorbing an entailed proposition into a product.
    Absorption,
    // --- tuple equality (identity types of sets) ---
    /// `(t = t) = 1`.
    EqRefl,
    /// Distinct constants are unequal: `(c₁ = c₂) = 0` for `c₁ ≠ c₂`.
    EqConstNeq,
    /// `( (a,b) = (c,d) ) = (a = c) × (b = d)`.
    EqPairSplit,
    /// `(a = b) = (b = a)` (used to orient equalities canonically).
    EqSym,
    /// Congruence: from `a = b` derive `f a = f b` (and transitivity /
    /// substitution as computed by congruence closure).
    EqCongruence,
    /// β/η of tuple pairing: `(a,b).1 = a`, `(a,b).2 = b`,
    /// `(t.1, t.2) = t`.
    TupleBeta,
    // --- proof-level moves ---
    /// Function extensionality (a consequence of univalence, Sec. 2):
    /// two queries are equal iff their denotations agree on every tuple.
    FunExt,
    /// Propositional univalence: `(A ↔ B) ⇒ (‖A‖ = ‖B‖)`.
    PropExt,
    /// Instantiating an existential (`Σ` under squash) with a witness.
    ExistsWitness,
    /// Case analysis on a hypothesis disjunction under squash.
    CaseSplit,
    /// α-renaming of bound variables.
    AlphaRename,
}

impl Lemma {
    /// Human-readable name used in printed proofs.
    pub fn name(self) -> &'static str {
        match self {
            Lemma::AddAcu => "add-assoc-comm-unit",
            Lemma::MulAcu => "mul-assoc-comm-unit",
            Lemma::MulZero => "mul-zero",
            Lemma::Distrib => "distributivity",
            Lemma::SumAdd => "sum-add",
            Lemma::SumHoist => "sum-hoist",
            Lemma::SumZero => "sum-zero",
            Lemma::SumPairSplit => "sum-pair-split (Lemma 5.1)",
            Lemma::SumSingleton => "sum-singleton (Lemma 5.2)",
            Lemma::SquashBase => "squash-base",
            Lemma::SquashDedup => "squash-dedup (‖n×n‖=‖n‖)",
            Lemma::SquashMul => "squash-mul",
            Lemma::SquashProp => "squash-prop",
            Lemma::NotBase => "not-base",
            Lemma::NotAdd => "not-add",
            Lemma::NotSquash => "not-squash",
            Lemma::Absorption => "absorption (Lemma 5.3)",
            Lemma::EqRefl => "eq-refl",
            Lemma::EqConstNeq => "eq-const-neq",
            Lemma::EqPairSplit => "eq-pair-split",
            Lemma::EqSym => "eq-sym",
            Lemma::EqCongruence => "eq-congruence",
            Lemma::TupleBeta => "tuple-beta-eta",
            Lemma::FunExt => "functional-extensionality",
            Lemma::PropExt => "prop-ext ((A↔B)⇒(‖A‖=‖B‖))",
            Lemma::ExistsWitness => "exists-witness",
            Lemma::CaseSplit => "case-split",
            Lemma::AlphaRename => "alpha-rename",
        }
    }
}

impl fmt::Display for Lemma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let all = [
            Lemma::AddAcu,
            Lemma::MulAcu,
            Lemma::MulZero,
            Lemma::Distrib,
            Lemma::SumAdd,
            Lemma::SumHoist,
            Lemma::SumZero,
            Lemma::SumPairSplit,
            Lemma::SumSingleton,
            Lemma::SquashBase,
            Lemma::SquashDedup,
            Lemma::SquashMul,
            Lemma::SquashProp,
            Lemma::NotBase,
            Lemma::NotAdd,
            Lemma::NotSquash,
            Lemma::Absorption,
            Lemma::EqRefl,
            Lemma::EqConstNeq,
            Lemma::EqPairSplit,
            Lemma::EqSym,
            Lemma::EqCongruence,
            Lemma::TupleBeta,
            Lemma::FunExt,
            Lemma::PropExt,
            Lemma::ExistsWitness,
            Lemma::CaseSplit,
            Lemma::AlphaRename,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Lemma::Distrib.to_string(), "distributivity");
        assert_eq!(Lemma::Absorption.to_string(), "absorption (Lemma 5.3)");
    }
}
