//! Property-based soundness of the normalizer and the equivalence
//! checker: random UniNomial expressions, evaluated over random finite
//! interpretations, must keep their value across normalization; and
//! whenever the equivalence checker says two normal forms are equal,
//! their evaluations agree.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::{BaseType, Card, Relation, Schema, Tuple, Value};
use uninomial::deduce::Ctx;
use uninomial::eval::{eval, eval_spnf, Env, Interp};
use uninomial::normalize::{normalize, Trace};
use uninomial::syntax::{Term, UExpr, Var, VarGen};

/// Builds a random UniNomial expression. Bound variables are tracked in
/// `scope` (plus one free variable) so every generated expression is
/// well-scoped; schemas are drawn from leaf/node over int so that sums
/// stay enumerable.
struct ExprGen {
    rng: StdRng,
    gen: VarGen,
}

impl ExprGen {
    fn new(seed: u64) -> ExprGen {
        ExprGen {
            rng: StdRng::seed_from_u64(seed),
            gen: VarGen::new(),
        }
    }

    fn schema(&mut self) -> Schema {
        if self.rng.gen_bool(0.7) {
            Schema::leaf(BaseType::Int)
        } else {
            Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int))
        }
    }

    fn term(&mut self, scope: &[Var], depth: usize) -> Term {
        // Prefer variables; fall back to constants.
        let leafy: Vec<&Var> = scope
            .iter()
            .filter(|v| matches!(v.schema, Schema::Leaf(_)))
            .collect();
        match self.rng.gen_range(0..6) {
            0 if depth > 0 => Term::func(
                "f",
                vec![self.term(scope, depth - 1)]
                    .into_iter()
                    .filter(|t| matches!(t.schema(), Some(Schema::Leaf(_)) | None))
                    .collect(),
            ),
            1 => Term::int(self.rng.gen_range(-2..=2)),
            _ if !leafy.is_empty() => Term::var(leafy[self.rng.gen_range(0..leafy.len())]),
            _ => Term::int(self.rng.gen_range(-2..=2)),
        }
    }

    fn expr(&mut self, scope: &[Var], depth: usize) -> UExpr {
        if depth == 0 {
            return self.atom(scope);
        }
        match self.rng.gen_range(0..8) {
            0 => UExpr::add(self.expr(scope, depth - 1), self.expr(scope, depth - 1)),
            1 => UExpr::mul(self.expr(scope, depth - 1), self.expr(scope, depth - 1)),
            2 => UExpr::not(self.expr(scope, depth - 1)),
            3 => UExpr::squash(self.expr(scope, depth - 1)),
            4 | 5 => {
                let schema = self.schema();
                let v = self.gen.fresh(schema);
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                // Guard the sum with a relation atom so it stays finite
                // in spirit (evaluation is over a finite domain anyway).
                let body = UExpr::mul(
                    UExpr::rel(
                        if self.rng.gen_bool(0.5) { "R" } else { "S" },
                        Term::var(&v),
                    ),
                    self.expr(&inner, depth - 1),
                );
                UExpr::sum(v, body)
            }
            _ => self.atom(scope),
        }
    }

    fn atom(&mut self, scope: &[Var]) -> UExpr {
        match self.rng.gen_range(0..5) {
            0 => UExpr::One,
            1 => UExpr::Zero,
            2 => UExpr::eq(self.term(scope, 1), self.term(scope, 1)),
            3 => UExpr::pred("b", self.term(scope, 1)),
            _ => {
                // Relation atoms over a leaf-schema'd term.
                let t = self.term(scope, 0);
                UExpr::rel("R", t)
            }
        }
    }
}

/// A small interpretation: R and S over both leaf and pair schemas is
/// impossible (one schema per symbol), so relations are keyed by leaf
/// tuples and pair lookups simply miss (multiplicity 0) — which is fine:
/// the SAME interpretation is used before and after normalization.
fn interp(seed: u64) -> Interp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Relation::empty(Schema::leaf(BaseType::Int));
    let mut s = Relation::empty(Schema::leaf(BaseType::Int));
    for v in -2..=2i64 {
        let m = rng.gen_range(0..3u64);
        if m > 0 {
            r.insert_with(Tuple::int(v), Card::Fin(m));
        }
        let m = rng.gen_range(0..3u64);
        if m > 0 {
            s.insert_with(Tuple::int(v), Card::Fin(m));
        }
    }
    let parity = rng.gen_bool(0.5);
    let shift = rng.gen_range(-1..=1i64);
    Interp::new()
        .with_rel("R", r)
        .with_rel("S", s)
        .with_pred("b", move |t: &Tuple| {
            format!("{t}").len().is_multiple_of(2) == parity
        })
        .with_fn("f", move |vs: &[Value]| {
            // Map back into the sample domain so singleton sums stay
            // exact under finite-domain evaluation.
            let x = vs.first().and_then(Value::as_int).unwrap_or(0);
            Value::Int(((x + shift).rem_euclid(5)) - 2)
        })
}

/// Evaluates an expression under an environment binding its free vars.
fn eval_with_free(
    e: &UExpr,
    i: &Interp,
    free: &std::collections::BTreeSet<Var>,
    assignment_seed: u64,
) -> Option<Vec<Card>> {
    // Evaluate at a few random assignments of the free variables.
    let mut rng = StdRng::seed_from_u64(assignment_seed);
    let mut out = Vec::new();
    for _ in 0..3 {
        let mut env = Env::new();
        for v in free {
            let tuples = i.enumerate(&v.schema);
            if tuples.is_empty() {
                return None;
            }
            env.insert(v.id, tuples[rng.gen_range(0..tuples.len())].clone());
        }
        out.push(eval(e, i, &env).ok()?);
    }
    Some(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn normalization_is_sound(seed in 0u64..100_000) {
        let mut eg = ExprGen::new(seed);
        let e = eg.expr(&[], 3);
        let mut gen = eg.gen;
        let mut trace = Trace::new();
        let nf = normalize(&e, &mut gen, &mut trace);
        let i = interp(seed ^ 0x5A5A);
        let free = e.free_vars();
        let before = eval_with_free(&e, &i, &free, seed);
        let reified = nf.reify();
        let after = eval_with_free(&reified, &i, &free, seed);
        prop_assert_eq!(
            before, after,
            "seed {}: {} ⇓ {} changed value", seed, e, nf
        );
    }

    #[test]
    fn equivalence_checker_is_sound(seed in 0u64..30_000) {
        // Generate two expressions; when the checker claims equality,
        // evaluation must agree everywhere we can test.
        let mut eg = ExprGen::new(seed);
        let scope_var = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let a = eg.expr(std::slice::from_ref(&scope_var), 2);
        let b = eg.expr(std::slice::from_ref(&scope_var), 2);
        let mut gen = eg.gen;
        let mut trace = Trace::new();
        let na = normalize(&a, &mut gen, &mut trace);
        let nb = normalize(&b, &mut gen, &mut trace);
        let mut ctx = Ctx::new(&mut gen, &mut trace);
        if uninomial::equiv::equiv(&na, &nb, &[], &mut ctx) {
            let i = interp(seed ^ 0x1234);
            for v in -2..=2i64 {
                let mut env = Env::new();
                env.insert(scope_var.id, Tuple::int(v));
                let va = eval_spnf(&na, &i, &env).ok();
                let vb = eval_spnf(&nb, &i, &env).ok();
                prop_assert_eq!(
                    va, vb,
                    "seed {}: checker equated {} and {} but values differ at {}",
                    seed, na, nb, v
                );
            }
        }
    }
}

#[test]
fn deductive_prover_is_sound_on_random_prop_goals() {
    // When prove_iff succeeds on two squashed expressions, their squashed
    // evaluations agree.
    let mut agreed = 0;
    for seed in 0..400u64 {
        let mut eg = ExprGen::new(seed);
        let free = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let a = UExpr::squash(eg.expr(std::slice::from_ref(&free), 2));
        let b = UExpr::squash(eg.expr(std::slice::from_ref(&free), 2));
        let mut gen = eg.gen;
        let mut trace = Trace::new();
        let na = normalize(&a, &mut gen, &mut trace);
        let nb = normalize(&b, &mut gen, &mut trace);
        if !(na.is_prop() && nb.is_prop()) {
            continue;
        }
        let mut ctx = Ctx::new(&mut gen, &mut trace);
        if uninomial::deduce::prove_iff(&na, &nb, &[], &mut ctx) {
            agreed += 1;
            let i = interp(seed ^ 0x777);
            for v in -2..=2i64 {
                let mut env = Env::new();
                env.insert(free.id, Tuple::int(v));
                let va = eval_spnf(&na, &i, &env).map(Card::squash).ok();
                let vb = eval_spnf(&nb, &i, &env).map(Card::squash).ok();
                assert_eq!(va, vb, "seed {seed}: prove_iff equated {na} and {nb}");
            }
        }
    }
    assert!(agreed > 3, "prove_iff succeeded on {agreed} random pairs");
}
