//! Property-based validation of the hash-consed core: interning must
//! round-trip exactly, cached analyses must agree with the tree
//! computations, and the memoizing normalizer must be observationally
//! identical to the tree normalizer — same normal form, same trace —
//! even when one cache is shared across many expressions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::{BaseType, Schema};
use uninomial::normalize::{normalize, normalize_with_cache, NormCache, Trace};
use uninomial::syntax::intern::Interner;
use uninomial::syntax::{Term, UExpr, Var, VarGen};

/// Random well-scoped UniNomial expressions (same shape as the
/// generator in `prop_normalize.rs`, plus aggregate terms so the
/// binder-detection logic is exercised).
struct ExprGen {
    rng: StdRng,
    gen: VarGen,
}

impl ExprGen {
    fn new(seed: u64) -> ExprGen {
        ExprGen {
            rng: StdRng::seed_from_u64(seed),
            gen: VarGen::new(),
        }
    }

    fn schema(&mut self) -> Schema {
        if self.rng.gen_bool(0.7) {
            Schema::leaf(BaseType::Int)
        } else {
            Schema::node(Schema::leaf(BaseType::Int), Schema::leaf(BaseType::Int))
        }
    }

    fn term(&mut self, scope: &[Var], depth: usize) -> Term {
        let leafy: Vec<&Var> = scope
            .iter()
            .filter(|v| matches!(v.schema, Schema::Leaf(_)))
            .collect();
        match self.rng.gen_range(0..7) {
            0 if depth > 0 => Term::func("f", vec![self.term(scope, depth - 1)]),
            1 if depth > 0 => {
                let v = self.gen.fresh(Schema::leaf(BaseType::Int));
                let body = UExpr::rel("R", Term::var(&v));
                Term::agg("SUM", v, body)
            }
            2 => Term::int(self.rng.gen_range(-2..=2)),
            _ if !leafy.is_empty() => Term::var(leafy[self.rng.gen_range(0..leafy.len())]),
            _ => Term::int(self.rng.gen_range(-2..=2)),
        }
    }

    fn expr(&mut self, scope: &[Var], depth: usize) -> UExpr {
        if depth == 0 {
            return self.atom(scope);
        }
        match self.rng.gen_range(0..9) {
            0 => UExpr::add(self.expr(scope, depth - 1), self.expr(scope, depth - 1)),
            1 => UExpr::mul(self.expr(scope, depth - 1), self.expr(scope, depth - 1)),
            2 => UExpr::not(self.expr(scope, depth - 1)),
            3 => UExpr::squash(self.expr(scope, depth - 1)),
            4 | 5 => {
                let schema = self.schema();
                let v = self.gen.fresh(schema);
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                let body = UExpr::mul(
                    UExpr::rel(
                        if self.rng.gen_bool(0.5) { "R" } else { "S" },
                        Term::var(&v),
                    ),
                    self.expr(&inner, depth - 1),
                );
                UExpr::sum(v, body)
            }
            6 => {
                // Deliberately duplicated subtree: the memoizer's bread
                // and butter.
                let shared = self.expr(scope, depth - 1);
                UExpr::mul(shared.clone(), shared)
            }
            _ => self.atom(scope),
        }
    }

    fn atom(&mut self, scope: &[Var]) -> UExpr {
        match self.rng.gen_range(0..5) {
            0 => UExpr::One,
            1 => UExpr::Zero,
            2 => UExpr::eq(self.term(scope, 1), self.term(scope, 1)),
            3 => UExpr::pred("b", self.term(scope, 1)),
            _ => {
                let t = self.term(scope, 0);
                UExpr::rel("R", t)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn intern_extract_roundtrips(seed in 0u64..1_000_000) {
        let mut eg = ExprGen::new(seed);
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let e = eg.expr(&[scope], 3);
        let mut interner = Interner::new();
        let id = interner.intern(&e);
        prop_assert_eq!(interner.extract(id), e.clone());
        // Re-interning the extracted tree is the identity on ids.
        let extracted = interner.extract(id);
        prop_assert_eq!(interner.intern(&extracted), id);
        // Cached analyses agree with the tree computations.
        prop_assert_eq!(interner.free_vars(id), &e.free_vars());
    }

    #[test]
    fn term_intern_roundtrips(seed in 0u64..1_000_000) {
        let mut eg = ExprGen::new(seed);
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let t = eg.term(&[scope], 3);
        let mut interner = Interner::new();
        let id = interner.intern_term(&t);
        prop_assert_eq!(interner.extract_term(id), t.clone());
        prop_assert_eq!(interner.term_free_vars(id), &t.free_vars());
    }

    #[test]
    fn memoized_normalization_matches_tree_normalizer(seed in 0u64..200_000) {
        let mut eg = ExprGen::new(seed);
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let e = eg.expr(&[scope], 3);

        // Tree path.
        let mut gen_tree = VarGen::new();
        gen_tree.reserve_above(e.max_var_id());
        let mut trace_tree = Trace::new();
        let nf_tree = normalize(&e, &mut gen_tree, &mut trace_tree);

        // Memoized path, twice over the same cache: the second run is
        // all hits and must still replay identically.
        let mut cache = NormCache::new();
        for round in 0..2 {
            let mut gen_memo = VarGen::new();
            gen_memo.reserve_above(e.max_var_id());
            let mut trace_memo = Trace::new();
            let nf_memo = normalize_with_cache(&e, &mut gen_memo, &mut trace_memo, &mut cache);
            prop_assert_eq!(
                &nf_memo, &nf_tree,
                "round {}: memoized NF diverged for {}", round, e
            );
            prop_assert_eq!(
                trace_memo.steps(), trace_tree.steps(),
                "round {}: memoized trace diverged for {}", round, e
            );
        }
    }
}

#[test]
fn shared_cache_across_goals_is_consistent_and_hits() {
    // One cache over many expressions drawn from overlapping generators:
    // results must stay identical to the tree normalizer and the memo
    // table must actually get hits (the engine's usage pattern).
    let mut cache = NormCache::new();
    let mut total_hits = 0;
    for seed in 0..120u64 {
        let mut eg = ExprGen::new(seed % 17); // overlapping seeds → shared structure
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let e = eg.expr(&[scope], 3);

        let mut gen_tree = VarGen::new();
        gen_tree.reserve_above(e.max_var_id());
        let mut tr_tree = Trace::new();
        let nf_tree = normalize(&e, &mut gen_tree, &mut tr_tree);

        let mut gen_memo = VarGen::new();
        gen_memo.reserve_above(e.max_var_id());
        let mut tr_memo = Trace::new();
        let nf_memo = normalize_with_cache(&e, &mut gen_memo, &mut tr_memo, &mut cache);

        assert_eq!(nf_memo, nf_tree, "seed {seed}: {e}");
        assert_eq!(tr_memo.steps(), tr_tree.steps(), "seed {seed}: {e}");
        total_hits = cache.hits();
    }
    assert!(
        total_hits > 0,
        "expected memo hits across overlapping expressions"
    );
}

#[test]
fn shared_memo_across_workers_is_bit_identical_and_hits() {
    // Two "workers" clone one interner snapshot and share a striped
    // memo (the engine's shared-cache path): every result and trace
    // must match the tree normalizer, and the second worker must serve
    // snapshot-prefix entries from the shared table.
    use uninomial::normalize::{normalization_input, SharedMemo};
    use uninomial::Interner;

    let exprs: Vec<UExpr> = (0..40u64)
        .map(|seed| {
            let mut eg = ExprGen::new(seed % 11); // overlap → shared structure
            let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
            eg.expr(&[scope], 3)
        })
        .collect();
    // Warm pass: intern the exact normalization-input trees, as the
    // engine's snapshot seeding does.
    let mut interner = Interner::new();
    for e in &exprs {
        let mut g = VarGen::new();
        let input = normalization_input(e, &mut g);
        interner.intern(&input);
    }
    let shared = SharedMemo::for_snapshot(&interner, 4);
    let mut worker_a = NormCache::from_interner_shared(interner.clone(), shared.clone());
    let mut worker_b = NormCache::from_interner_shared(interner, shared.clone());
    for (i, e) in exprs.iter().enumerate() {
        let mut gen_tree = VarGen::new();
        let mut tr_tree = Trace::new();
        let nf_tree = normalize(e, &mut gen_tree, &mut tr_tree);
        for (name, worker) in [("a", &mut worker_a), ("b", &mut worker_b)] {
            let mut gen = VarGen::new();
            let mut tr = Trace::new();
            let nf = normalize_with_cache(e, &mut gen, &mut tr, worker);
            assert_eq!(nf, nf_tree, "expr {i} worker {name}: {e}");
            assert_eq!(tr.steps(), tr_tree.steps(), "expr {i} worker {name}: {e}");
        }
    }
    assert!(!shared.is_empty(), "shared table must have entries");
    assert!(
        worker_b.shared_hits() > 0,
        "worker b must hit entries worker a computed"
    );
}

#[test]
fn lock_free_shared_memo_matches_striped_under_concurrent_readers() {
    // The lock-free slot-array read path must return entries
    // byte-identical to the Mutex-striped reference — normal forms AND
    // trace fragments — with many reader threads racing over a table
    // one warm worker pre-published.
    use std::sync::Arc;
    use uninomial::normalize::{normalization_input, SharedMemo};
    use uninomial::Interner;

    let exprs: Vec<UExpr> = (0..32u64)
        .map(|seed| {
            let mut eg = ExprGen::new(seed % 7); // heavy overlap → shared structure
            let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
            eg.expr(&[scope], 3)
        })
        .collect();
    let mut interner = Interner::new();
    for e in &exprs {
        let mut g = VarGen::new();
        let input = normalization_input(e, &mut g);
        interner.intern(&input);
    }
    let lock_free = SharedMemo::for_snapshot(&interner, 4);
    let striped = SharedMemo::for_snapshot_striped(&interner, 4);
    // Warm both tables with one worker each.
    for shared in [&lock_free, &striped] {
        let mut warm = NormCache::from_interner_shared(interner.clone(), shared.clone());
        for e in &exprs {
            let mut g = VarGen::new();
            let mut tr = Trace::new();
            normalize_with_cache(e, &mut g, &mut tr, &mut warm);
        }
    }
    assert!(!lock_free.is_empty());
    assert_eq!(lock_free.len(), striped.len(), "same entries published");
    // Concurrent readers over the pre-published lock-free layer; each
    // thread checks its results against the striped reference and the
    // plain tree normalizer.
    let exprs = Arc::new(exprs);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let exprs = Arc::clone(&exprs);
            let lock_free = lock_free.clone();
            let striped = striped.clone();
            let interner = interner.clone();
            std::thread::spawn(move || {
                let mut fast = NormCache::from_interner_shared(interner.clone(), lock_free);
                let mut reference = NormCache::from_interner_shared(interner, striped);
                for (i, e) in exprs.iter().enumerate() {
                    let (mut g1, mut g2, mut g3) = (VarGen::new(), VarGen::new(), VarGen::new());
                    let (mut t1, mut t2, mut t3) = (Trace::new(), Trace::new(), Trace::new());
                    let nf_fast = normalize_with_cache(e, &mut g1, &mut t1, &mut fast);
                    let nf_ref = normalize_with_cache(e, &mut g2, &mut t2, &mut reference);
                    let nf_tree = normalize(e, &mut g3, &mut t3);
                    assert_eq!(nf_fast, nf_ref, "thread {t} expr {i}: {e}");
                    assert_eq!(nf_fast, nf_tree, "thread {t} expr {i}: {e}");
                    assert_eq!(t1.steps(), t2.steps(), "thread {t} expr {i}: {e}");
                    assert_eq!(t1.steps(), t3.steps(), "thread {t} expr {i}: {e}");
                }
                (fast.shared_hits(), reference.shared_hits())
            })
        })
        .collect();
    for h in handles {
        let (fast_hits, ref_hits) = h.join().expect("reader thread");
        assert!(fast_hits > 0, "lock-free readers must hit warm entries");
        assert_eq!(fast_hits, ref_hits, "hit pattern must match the stripes");
    }
}

#[test]
fn cached_prover_agrees_with_uncached_prover() {
    use uninomial::prove::{prove_eq_cached, prove_eq_with_axioms};
    let mut cache = NormCache::new();
    for seed in 0..60u64 {
        let mut eg = ExprGen::new(seed);
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let a = eg.expr(std::slice::from_ref(&scope), 2);
        let b = eg.expr(&[scope], 2);

        let mut g1 = VarGen::new();
        g1.reserve_above(a.max_var_id().max(b.max_var_id()));
        let plain = prove_eq_with_axioms(&a, &b, &[], &mut g1);

        let mut g2 = VarGen::new();
        g2.reserve_above(a.max_var_id().max(b.max_var_id()));
        let cached = prove_eq_cached(&a, &b, &[], &mut g2, &mut cache);

        match (&plain, &cached) {
            (Ok(p), Ok(c)) => {
                assert_eq!(p.method(), c.method(), "seed {seed}");
                assert_eq!(p.steps(), c.steps(), "seed {seed}");
                assert_eq!(p.lhs_normal_form(), c.lhs_normal_form(), "seed {seed}");
                assert_eq!(p.rhs_normal_form(), c.rhs_normal_form(), "seed {seed}");
            }
            (Err(pe), Err(ce)) => {
                assert_eq!(pe.lhs_nf, ce.lhs_nf, "seed {seed}");
                assert_eq!(pe.rhs_nf, ce.rhs_nf, "seed {seed}");
            }
            _ => panic!(
                "seed {seed}: cached/uncached provers disagree on provability: {:?} vs {:?}",
                plain.is_ok(),
                cached.is_ok()
            ),
        }
    }
}
