//! Parser round-trips and error handling on a corpus of paper queries.

use hottsql::ast::{Predicate, Proj, Query};
use hottsql::parse::{parse_pred, parse_query};

/// Queries lifted from the paper (Sec. 2, 3.2, 4.2, 5.1, 5.2), in our
/// concrete syntax.
const CORPUS: &[&str] = &[
    "SELECT Right.Left FROM R",
    "DISTINCT SELECT Right.Left FROM R",
    "SELECT Right FROM (R UNION ALL S) WHERE b",
    "(SELECT Right FROM R WHERE b) UNION ALL (SELECT Right FROM S WHERE b)",
    "DISTINCT SELECT Right.Left.a FROM R, R WHERE Right.Left.a = Right.Right.a",
    "SELECT Right.Left FROM R, S",
    "SELECT Right.Right.p FROM R, S",
    "SELECT (Right.Left.p1, Right.Right.p2) FROM R, S",
    "SELECT E2P(add(Right.p1, Right.p2)) FROM R",
    "R EXCEPT S",
    "DISTINCT SELECT Right.Left.Left FROM (R1, R1), R2 \
     WHERE Right.Left.Left.Left = Right.Left.Right.Left \
     AND Right.Left.Left.Right = Right.Right",
    "SELECT Right FROM R WHERE EXISTS (SELECT Right FROM S WHERE CASTPRED Right (b))",
    "SELECT Right FROM R WHERE NOT (Right.a = 5) AND TRUE",
    "SELECT Right FROM R WHERE lt(Right.age, 30) OR Right.name = 'bob'",
    "SELECT Right FROM R WHERE SUM(SELECT Right.g FROM R) = 5",
];

#[test]
fn corpus_parses() {
    for text in CORPUS {
        parse_query(text).unwrap_or_else(|e| panic!("{text}\n  -> {e}"));
    }
}

#[test]
fn display_of_parsed_corpus_reparses_equal() {
    // Query's Display emits fully parenthesized concrete syntax; parsing
    // it back must give the same AST (a weak printer-parser adjunction).
    for text in CORPUS {
        let q = parse_query(text).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed).unwrap_or_else(|e| {
            panic!("printed form of {text} does not reparse: {printed}\n  -> {e}")
        });
        assert_eq!(q, q2, "{text}\n  printed: {printed}");
    }
}

#[test]
fn pred_display_reparses() {
    let preds = [
        "Left.a = Right.b",
        "NOT (b1) AND (b2 OR TRUE)",
        "EXISTS (SELECT Right FROM R)",
        "CASTPRED Right (b)",
        "lt(Left.x, 3)",
    ];
    for text in preds {
        let b = parse_pred(text).unwrap();
        let printed = b.to_string();
        let b2 = parse_pred(&printed)
            .unwrap_or_else(|e| panic!("printed pred does not reparse: {printed}\n  -> {e}"));
        assert_eq!(b, b2, "{text} -> {printed}");
    }
}

#[test]
fn structure_of_nested_from_lists() {
    let q = parse_query("SELECT Right FROM A, B, C").unwrap();
    match q {
        Query::Select(Proj::Right, from) => {
            assert_eq!(
                *from,
                Query::product(
                    Query::product(Query::table("A"), Query::table("B")),
                    Query::table("C")
                )
            );
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn where_binds_to_whole_from_list() {
    let q = parse_query("SELECT Right FROM A, B WHERE TRUE").unwrap();
    match q {
        Query::Select(_, body) => match *body {
            Query::Where(from, Predicate::True) => {
                assert!(matches!(*from, Query::Product(_, _)));
            }
            other => panic!("unexpected {other}"),
        },
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn malformed_inputs_error_cleanly() {
    for text in [
        "",
        "SELECT",
        "SELECT * FROM",
        "SELECT * FROM R WHERE",
        "R UNION S", // missing ALL
        "((R)",      // unbalanced
        "SELECT * FROM R WHERE x =",
        "SELECT *. FROM R",
    ] {
        assert!(parse_query(text).is_err(), "{text:?} should not parse");
    }
}

#[test]
fn generated_queries_roundtrip_through_display() {
    use hottsql::arbitrary::QueryGen;
    use relalg::{BaseType, Schema};
    let tables = vec![
        (
            "R".to_string(),
            Schema::flat([BaseType::Int, BaseType::Int]),
        ),
        ("T".to_string(), Schema::leaf(BaseType::Int)),
    ];
    for seed in 0..80u64 {
        let mut g = QueryGen::new(seed, tables.clone());
        let (q, _) = g.query();
        let printed = q.to_string();
        let reparsed =
            parse_query(&printed).unwrap_or_else(|e| panic!("seed {seed}: {printed}\n  -> {e}"));
        // Projection paths may re-associate (`a.(b.c)` vs `(a.b).c` are
        // the same function), so compare up to a display fixpoint.
        assert_eq!(
            printed,
            reparsed.to_string(),
            "seed {seed}: display not stable under reparse"
        );
    }
}

#[test]
fn keywords_do_not_shadow_identifiers() {
    // "Lefty" is an identifier, not the Left selector.
    let q = parse_query("SELECT Right.Lefty FROM R").unwrap();
    match q {
        Query::Select(p, _) => assert_eq!(p, Proj::dot(Proj::Right, Proj::var("Lefty"))),
        other => panic!("unexpected {other}"),
    }
}
