//! The abstract syntax of HoTTSQL (Fig. 5 of the paper).
//!
//! Four syntactic categories: queries, predicates, expressions, and
//! projections. Meta-variables (for relations, predicates, expressions,
//! and attribute projections) make the language a language of *rewrite
//! rules*: a rule holds for all instantiations of its meta-variables
//! (Sec. 3.3).

use relalg::Value;
use std::fmt;

/// A query (`q` in Fig. 5). `FROM q₁, …, qₙ` is represented by nested
/// binary [`Query::Product`]s (left-associated), matching the paper's
/// binary `node` schemas.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Query {
    /// A base table or a relation meta-variable.
    Table(String),
    /// `SELECT p q` — projection.
    Select(Proj, Box<Query>),
    /// `FROM q₁, q₂` — cross product with schema `node σ₁ σ₂`.
    Product(Box<Query>, Box<Query>),
    /// `q WHERE b` — selection.
    Where(Box<Query>, Predicate),
    /// `q₁ UNION ALL q₂` — bag union.
    UnionAll(Box<Query>, Box<Query>),
    /// `q₁ EXCEPT q₂` — the paper's negation-style difference.
    Except(Box<Query>, Box<Query>),
    /// `DISTINCT q` — duplicate elimination.
    Distinct(Box<Query>),
}

impl Query {
    /// A base-table reference.
    pub fn table(name: impl Into<String>) -> Query {
        Query::Table(name.into())
    }

    /// `SELECT p q`.
    pub fn select(p: Proj, q: Query) -> Query {
        Query::Select(p, Box::new(q))
    }

    /// `FROM a, b`.
    pub fn product(a: Query, b: Query) -> Query {
        Query::Product(Box::new(a), Box::new(b))
    }

    /// Left-associated product of several queries.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn product_all(qs: impl IntoIterator<Item = Query>) -> Query {
        let mut it = qs.into_iter();
        let first = it.next().expect("product of at least one query");
        it.fold(first, Query::product)
    }

    /// `q WHERE b`.
    pub fn where_(q: Query, b: Predicate) -> Query {
        Query::Where(Box::new(q), b)
    }

    /// `a UNION ALL b`.
    pub fn union_all(a: Query, b: Query) -> Query {
        Query::UnionAll(Box::new(a), Box::new(b))
    }

    /// `a EXCEPT b`.
    pub fn except(a: Query, b: Query) -> Query {
        Query::Except(Box::new(a), Box::new(b))
    }

    /// `DISTINCT q`.
    pub fn distinct(q: Query) -> Query {
        Query::Distinct(Box::new(q))
    }

    /// Names of all tables/relation meta-variables referenced.
    pub fn table_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Query::Table(n) => out.push(n),
            Query::Select(_, q) | Query::Distinct(q) => q.collect_tables(out),
            Query::Product(a, b) | Query::UnionAll(a, b) | Query::Except(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Query::Where(q, b) => {
                q.collect_tables(out);
                b.collect_tables(out);
            }
        }
    }
}

/// A predicate (`b` in Fig. 5), extended with uninterpreted predicate
/// applications (used by e.g. the magic-set rules' `θ`, `age < 30`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Predicate {
    /// `e₁ = e₂`.
    Eq(Expr, Expr),
    /// `NOT b`.
    Not(Box<Predicate>),
    /// `b₁ AND b₂`.
    And(Box<Predicate>, Box<Predicate>),
    /// `b₁ OR b₂`.
    Or(Box<Predicate>, Box<Predicate>),
    /// `TRUE`.
    True,
    /// `FALSE`.
    False,
    /// `CASTPRED p b` — evaluate `b` in the context reached by `p`
    /// (Sec. 3.3).
    CastPred(Proj, Box<Predicate>),
    /// `EXISTS q`.
    Exists(Box<Query>),
    /// A predicate meta-variable applied to the whole context tuple.
    Var(String),
    /// An uninterpreted predicate applied to expressions (e.g. `lt(a, b)`).
    Uninterp(String, Vec<Expr>),
}

impl Predicate {
    /// `e₁ = e₂`.
    pub fn eq(a: Expr, b: Expr) -> Predicate {
        Predicate::Eq(a, b)
    }

    /// `NOT b`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(b: Predicate) -> Predicate {
        Predicate::Not(Box::new(b))
    }

    /// `a AND b`.
    pub fn and(a: Predicate, b: Predicate) -> Predicate {
        Predicate::And(Box::new(a), Box::new(b))
    }

    /// Conjunction of several predicates (`TRUE` if empty).
    pub fn and_all(ps: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut it = ps.into_iter();
        match it.next() {
            None => Predicate::True,
            Some(first) => it.fold(first, Predicate::and),
        }
    }

    /// `a OR b`.
    pub fn or(a: Predicate, b: Predicate) -> Predicate {
        Predicate::Or(Box::new(a), Box::new(b))
    }

    /// `CASTPRED p b`.
    pub fn cast(p: Proj, b: Predicate) -> Predicate {
        Predicate::CastPred(p, Box::new(b))
    }

    /// `EXISTS q`.
    pub fn exists(q: Query) -> Predicate {
        Predicate::Exists(Box::new(q))
    }

    /// A predicate meta-variable.
    pub fn var(name: impl Into<String>) -> Predicate {
        Predicate::Var(name.into())
    }

    /// An uninterpreted predicate application.
    pub fn uninterp(name: impl Into<String>, args: Vec<Expr>) -> Predicate {
        Predicate::Uninterp(name.into(), args)
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Eq(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Predicate::Not(b) | Predicate::CastPred(_, b) => b.collect_tables(out),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Predicate::Exists(q) => q.collect_tables(out),
            Predicate::Uninterp(_, es) => {
                for e in es {
                    e.collect_tables(out);
                }
            }
            Predicate::True | Predicate::False | Predicate::Var(_) => {}
        }
    }
}

/// A value expression (`e` in Fig. 5).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// `P2E p` — a projection used as a scalar expression.
    P2E(Proj),
    /// An uninterpreted scalar function `f(e₁, …, eₙ)`.
    Fn(String, Vec<Expr>),
    /// `agg(q)` — an aggregate of a single-column query.
    Agg(String, Box<Query>),
    /// `CASTEXPR p e` — evaluate `e` in the context reached by `p`.
    CastExpr(Proj, Box<Expr>),
    /// A scalar constant (a nullary uninterpreted function, made
    /// first-class for convenience).
    Const(Value),
    /// An expression meta-variable applied to the whole context tuple.
    Var(String),
}

impl Expr {
    /// A projection as an expression.
    pub fn p2e(p: Proj) -> Expr {
        Expr::P2E(p)
    }

    /// An uninterpreted function application.
    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Fn(name.into(), args)
    }

    /// An aggregate of a query.
    pub fn agg(name: impl Into<String>, q: Query) -> Expr {
        Expr::Agg(name.into(), Box::new(q))
    }

    /// `CASTEXPR p e`.
    pub fn cast(p: Proj, e: Expr) -> Expr {
        Expr::CastExpr(p, Box::new(e))
    }

    /// An integer constant.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Value::Int(n))
    }

    /// A constant value.
    pub fn value(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// An expression meta-variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::P2E(_) | Expr::Const(_) | Expr::Var(_) => {}
            Expr::Fn(_, es) => {
                for e in es {
                    e.collect_tables(out);
                }
            }
            Expr::Agg(_, q) => q.collect_tables(out),
            Expr::CastExpr(_, e) => e.collect_tables(out),
        }
    }
}

/// A projection (`p` in Fig. 5): a tuple-to-tuple function.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Proj {
    /// `*` — identity.
    Star,
    /// `Left` — first component.
    Left,
    /// `Right` — second component.
    Right,
    /// `Empty` — the unit tuple.
    Empty,
    /// `p₁ . p₂` — composition (apply `p₁`, then `p₂`).
    Dot(Box<Proj>, Box<Proj>),
    /// `p₁ , p₂` — pairing.
    Pair(Box<Proj>, Box<Proj>),
    /// `E2P e` — an expression as a (singleton-tuple) projection.
    E2P(Box<Expr>),
    /// A projection meta-variable (a generic attribute, Sec. 3.3).
    Var(String),
}

impl Proj {
    /// Composition `p₁ . p₂`.
    pub fn dot(p1: Proj, p2: Proj) -> Proj {
        Proj::Dot(Box::new(p1), Box::new(p2))
    }

    /// Composition of a path of projections, left to right.
    ///
    /// ```
    /// use hottsql::ast::Proj;
    /// let p = Proj::path([Proj::Left, Proj::Right]);
    /// assert_eq!(p, Proj::dot(Proj::Left, Proj::Right));
    /// ```
    pub fn path(ps: impl IntoIterator<Item = Proj>) -> Proj {
        let mut it = ps.into_iter();
        let first = it.next().unwrap_or(Proj::Star);
        it.fold(first, Proj::dot)
    }

    /// Pairing `p₁ , p₂`.
    pub fn pair(p1: Proj, p2: Proj) -> Proj {
        Proj::Pair(Box::new(p1), Box::new(p2))
    }

    /// An expression as a projection.
    pub fn e2p(e: Expr) -> Proj {
        Proj::E2P(Box::new(e))
    }

    /// A projection meta-variable.
    pub fn var(name: impl Into<String>) -> Proj {
        Proj::Var(name.into())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Table(n) => write!(f, "{n}"),
            Query::Select(p, q) => write!(f, "SELECT {p} FROM ({q})"),
            Query::Product(a, b) => write!(f, "({a}), ({b})"),
            Query::Where(q, b) => write!(f, "({q}) WHERE {b}"),
            Query::UnionAll(a, b) => write!(f, "({a}) UNION ALL ({b})"),
            Query::Except(a, b) => write!(f, "({a}) EXCEPT ({b})"),
            Query::Distinct(q) => write!(f, "DISTINCT ({q})"),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Eq(a, b) => write!(f, "{a} = {b}"),
            Predicate::Not(b) => write!(f, "NOT ({b})"),
            Predicate::And(a, b) => write!(f, "({a}) AND ({b})"),
            Predicate::Or(a, b) => write!(f, "({a}) OR ({b})"),
            Predicate::True => write!(f, "TRUE"),
            Predicate::False => write!(f, "FALSE"),
            Predicate::CastPred(p, b) => write!(f, "CASTPRED {p} ({b})"),
            Predicate::Exists(q) => write!(f, "EXISTS ({q})"),
            Predicate::Var(n) => write!(f, "{n}"),
            Predicate::Uninterp(n, es) => {
                write!(f, "{n}(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::P2E(p) => write!(f, "{p}"),
            Expr::Fn(n, es) => {
                write!(f, "{n}(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Agg(n, q) => write!(f, "{n}({q})"),
            Expr::CastExpr(p, e) => write!(f, "CASTEXPR {p} ({e})"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Display for Proj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proj::Star => write!(f, "*"),
            Proj::Left => write!(f, "Left"),
            Proj::Right => write!(f, "Right"),
            Proj::Empty => write!(f, "Empty"),
            Proj::Dot(a, b) => write!(f, "{a}.{b}"),
            Proj::Pair(a, b) => write!(f, "({a}, {b})"),
            Proj::E2P(e) => write!(f, "E2P({e})"),
            Proj::Var(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        // SELECT Left.* FROM R, S  (q1 of Sec. 3.2)
        let q = Query::select(
            Proj::dot(Proj::Right, Proj::Left),
            Query::product(Query::table("R"), Query::table("S")),
        );
        assert_eq!(q.table_names(), vec!["R", "S"]);
        let shown = q.to_string();
        assert!(shown.contains("SELECT"), "{shown}");
    }

    #[test]
    fn product_all_left_associates() {
        let q = Query::product_all([Query::table("A"), Query::table("B"), Query::table("C")]);
        assert_eq!(
            q,
            Query::product(
                Query::product(Query::table("A"), Query::table("B")),
                Query::table("C"),
            )
        );
    }

    #[test]
    fn and_all_of_empty_is_true() {
        assert_eq!(Predicate::and_all([]), Predicate::True);
        let p = Predicate::and_all([Predicate::True, Predicate::False]);
        assert_eq!(p, Predicate::and(Predicate::True, Predicate::False));
    }

    #[test]
    fn table_names_dedup_and_see_subqueries() {
        let q = Query::where_(
            Query::table("R"),
            Predicate::exists(Query::product(Query::table("R"), Query::table("S"))),
        );
        assert_eq!(q.table_names(), vec!["R", "S"]);
    }

    #[test]
    fn table_names_inside_aggregates() {
        let q = Query::select(
            Proj::e2p(Expr::agg("SUM", Query::table("T"))),
            Query::table("R"),
        );
        // Aggregates live inside projections, which table_names does not
        // traverse (projections are tuple functions, not queries) — but
        // predicates do:
        let q2 = Query::where_(
            Query::table("R"),
            Predicate::eq(Expr::agg("SUM", Query::table("T")), Expr::int(0)),
        );
        assert_eq!(q2.table_names(), vec!["R", "T"]);
        drop(q);
    }

    #[test]
    fn display_roundtrips_visually() {
        let p = Proj::path([Proj::Right, Proj::Left, Proj::var("k")]);
        assert_eq!(p.to_string(), "Right.Left.k");
        let b = Predicate::eq(
            Expr::p2e(Proj::dot(Proj::Left, Proj::var("a"))),
            Expr::int(5),
        );
        assert_eq!(b.to_string(), "Left.a = 5");
    }

    #[test]
    fn path_of_empty_is_star() {
        assert_eq!(Proj::path([]), Proj::Star);
    }
}
