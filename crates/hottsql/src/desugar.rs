//! Derived HoTTSQL constructs (Sec. 4.2 and Sec. 7).
//!
//! HoTTSQL supports `GROUP BY`, `SEMIJOIN`, and `LEFT OUTER JOIN` not as
//! primitives but as *syntactic rewrites* into the core language:
//!
//! - `GROUP BY` desugars to a `DISTINCT` projection with a correlated
//!   aggregate subquery (Sec. 4.2, after Buneman et al. [6]);
//! - `A SEMIJOIN B ON θ` desugars to
//!   `SELECT * FROM A WHERE EXISTS (SELECT * FROM B WHERE θ)` (Sec. 5.1.3);
//! - `LEFT OUTER JOIN` desugars to an inner join unioned with the
//!   unmatched left rows padded by NULLs, where NULL is modeled as an
//!   uninterpreted nullary function per base type (Sec. 7's "external
//!   operators" encoding).

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::env::QueryEnv;
use relalg::{BaseType, Schema, Value};

/// `A SEMIJOIN B ON θ` (Sec. 5.1.3).
///
/// `theta` is evaluated under the context `node (node Γ σ_A) σ_B`: the
/// outer context extended with the `A`-tuple, then the `B`-tuple.
pub fn semijoin(a: Query, b: Query, theta: Predicate) -> Query {
    Query::where_(a, Predicate::exists(Query::where_(b, theta)))
}

/// Desugars `SELECT key, agg(attr) FROM table GROUP BY key` into the core
/// language (Sec. 4.2):
///
/// ```text
/// DISTINCT SELECT (key(t), agg(SELECT attr FROM table WHERE key(inner) = key(t)))
/// FROM table
/// ```
///
/// `key` and `attr` are projections *from the table's schema* to a leaf.
/// `table` must not reference the enclosing context (base tables and
/// closed queries are fine).
pub fn group_by_agg(table: Query, key: Proj, agg: &str, attr: Proj) -> Query {
    // Outer projection context: node(Γ, σ_table); the grouped tuple is Right.
    let outer_key = Proj::dot(Proj::Right, key.clone());
    // Inner WHERE context: node(node(Γ, σ_table), σ_table):
    //  - the inner table tuple is Right,
    //  - the outer (group representative) tuple is Left.Right.
    let inner_cond = Predicate::eq(
        Expr::p2e(Proj::dot(Proj::Right, key.clone())),
        Expr::p2e(Proj::path([Proj::Left, Proj::Right, key])),
    );
    let inner = Query::select(
        Proj::dot(Proj::Right, attr),
        Query::where_(table.clone(), inner_cond),
    );
    Query::distinct(Query::select(
        Proj::pair(outer_key, Proj::e2p(Expr::agg(agg, inner))),
        table,
    ))
}

/// The name of the uninterpreted nullary function standing for `NULL` at
/// a base type (Sec. 7 encoding).
pub fn null_fn_name(ty: BaseType) -> &'static str {
    match ty {
        BaseType::Int => "null_int",
        BaseType::Bool => "null_bool",
        BaseType::Str => "null_string",
    }
}

/// A projection producing a NULL-padded tuple of the given schema (every
/// leaf is the corresponding `null_τ()` call).
pub fn null_proj(schema: &Schema) -> Proj {
    match schema {
        Schema::Empty => Proj::Empty,
        Schema::Leaf(t) => Proj::e2p(Expr::func(null_fn_name(*t), vec![])),
        Schema::Node(l, r) => Proj::pair(null_proj(l), null_proj(r)),
    }
}

/// Declares the `null_τ` functions in an environment (call before typing
/// queries produced by [`left_outer_join`]).
pub fn declare_null_fns(env: QueryEnv) -> QueryEnv {
    env.with_fn("null_int", BaseType::Int)
        .with_fn("null_bool", BaseType::Bool)
        .with_fn("null_string", BaseType::Str)
}

/// Installs `null_τ` implementations (returning [`Value::Null`]) into an
/// instance.
pub fn install_null_fns(inst: crate::eval::Instance) -> crate::eval::Instance {
    inst.with_fn("null_int", |_: &[Value]| Value::Null)
        .with_fn("null_bool", |_: &[Value]| Value::Null)
        .with_fn("null_string", |_: &[Value]| Value::Null)
}

/// `R LEFT OUTER JOIN S ON θ` (Sec. 7): the inner join unioned with the
/// unmatched rows of `R` padded by NULLs.
///
/// `theta` is evaluated under `node (Γ, node σ_R σ_S)` — the context of a
/// plain join `FROM R, S WHERE θ`. `s_schema` is the schema of `S`, used
/// to build the NULL padding. `r` and `s` must not reference the
/// enclosing context.
pub fn left_outer_join(r: Query, s: Query, theta: Predicate, s_schema: &Schema) -> Query {
    let joined = Query::where_(Query::product(r.clone(), s.clone()), theta.clone());
    // Unmatched rows: R WHERE NOT EXISTS (S WHERE θ′), where θ′ re-targets
    // θ from node(Γ, node σR σS) to node(node(Γ, σR), σS).
    let retarget = Proj::pair(
        Proj::dot(Proj::Left, Proj::Left),
        Proj::pair(Proj::dot(Proj::Left, Proj::Right), Proj::Right),
    );
    let theta_prime = Predicate::cast(retarget, theta);
    let unmatched = Query::where_(
        r,
        Predicate::not(Predicate::exists(Query::where_(s, theta_prime))),
    );
    // Pad: SELECT (Right.*, NULLs) FROM unmatched.
    let padded = Query::select(Proj::pair(Proj::Right, null_proj(s_schema)), unmatched);
    Query::union_all(joined, padded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query, Instance};
    use crate::ty::infer_query;
    use relalg::{Card, Relation, Tuple};

    fn int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn two_col(rows: &[(i64, i64)]) -> Relation {
        Relation::from_tuples(
            Schema::node(int(), int()),
            rows.iter()
                .map(|&(a, b)| Tuple::pair(Tuple::int(a), Tuple::int(b))),
        )
        .unwrap()
    }

    #[test]
    fn group_by_sums_per_group() {
        // R(k, g) = {(1,10), (1,20), (2,5)}: GROUP BY k, SUM(g) gives
        // {(1,30), (2,5)}.
        let env = QueryEnv::new().with_table("R", Schema::node(int(), int()));
        let inst = Instance::new().with_table("R", two_col(&[(1, 10), (1, 20), (2, 5)]));
        let q = group_by_agg(Query::table("R"), Proj::Left, "SUM", Proj::Right);
        assert!(infer_query(&q, &env, &Schema::Empty).is_ok());
        let out = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(
            out.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(30))),
            Card::ONE
        );
        assert_eq!(
            out.multiplicity(&Tuple::pair(Tuple::int(2), Tuple::int(5))),
            Card::ONE
        );
        assert_eq!(out.support_size(), 2);
    }

    #[test]
    fn group_by_count() {
        let env = QueryEnv::new().with_table("R", Schema::node(int(), int()));
        let inst = Instance::new().with_table("R", two_col(&[(1, 10), (1, 20), (1, 20)]));
        let q = group_by_agg(Query::table("R"), Proj::Left, "COUNT", Proj::Right);
        let out = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(
            out.multiplicity(&Tuple::pair(Tuple::int(1), Tuple::int(3))),
            Card::ONE
        );
    }

    #[test]
    fn semijoin_keeps_multiplicity_of_left() {
        // A = {1, 1, 2}, B = {1}: A ⋉ B on equality = {1, 1}.
        let env = QueryEnv::new()
            .with_table("A", int())
            .with_table("B", int());
        let a =
            Relation::from_tuples(int(), [Tuple::int(1), Tuple::int(1), Tuple::int(2)]).unwrap();
        let b = Relation::from_tuples(int(), [Tuple::int(1)]).unwrap();
        let inst = Instance::new().with_table("A", a).with_table("B", b);
        // θ under node(node(Γ, σA), σB): A-tuple at Left.Right, B at Right.
        let theta = Predicate::eq(
            Expr::p2e(Proj::path([Proj::Left, Proj::Right])),
            Expr::p2e(Proj::Right),
        );
        let q = semijoin(Query::table("A"), Query::table("B"), theta);
        let out = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(out.multiplicity(&Tuple::int(1)), Card::Fin(2));
        assert_eq!(out.multiplicity(&Tuple::int(2)), Card::ZERO);
    }

    #[test]
    fn left_outer_join_pads_unmatched_rows() {
        // R = {1, 2}, S = {(1, 10)}: R LOJ S on R = S.key gives
        // {(1, (1,10)), (2, (NULL,NULL))}.
        let s_schema = Schema::node(int(), int());
        let env = declare_null_fns(
            QueryEnv::new()
                .with_table("R", int())
                .with_table("S", s_schema.clone()),
        );
        let r = Relation::from_tuples(int(), [Tuple::int(1), Tuple::int(2)]).unwrap();
        let s = two_col(&[(1, 10)]);
        let inst = install_null_fns(Instance::new().with_table("R", r).with_table("S", s));
        // θ under node(Γ, node σR σS): R at Right.Left, S at Right.Right.
        let theta = Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
            Expr::p2e(Proj::path([Proj::Right, Proj::Right, Proj::Left])),
        );
        let q = left_outer_join(Query::table("R"), Query::table("S"), theta, &s_schema);
        assert!(infer_query(&q, &env, &Schema::Empty).is_ok());
        let out = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        let matched = Tuple::pair(Tuple::int(1), Tuple::pair(Tuple::int(1), Tuple::int(10)));
        let padded = Tuple::pair(
            Tuple::int(2),
            Tuple::pair(Tuple::Leaf(Value::Null), Tuple::Leaf(Value::Null)),
        );
        assert_eq!(out.multiplicity(&matched), Card::ONE);
        assert_eq!(out.multiplicity(&padded), Card::ONE);
        assert_eq!(out.support_size(), 2);
    }

    #[test]
    fn null_proj_shapes_follow_schema() {
        let s = Schema::node(
            int(),
            Schema::node(Schema::leaf(BaseType::Bool), Schema::Empty),
        );
        match null_proj(&s) {
            Proj::Pair(l, r) => {
                assert!(matches!(*l, Proj::E2P(_)));
                assert!(matches!(*r, Proj::Pair(_, _)));
            }
            other => panic!("expected pair, got {other}"),
        }
    }

    #[test]
    fn group_by_is_well_typed_under_nonempty_context() {
        // The derived form must also type under a nonempty outer context.
        let env = QueryEnv::new().with_table("R", Schema::node(int(), int()));
        let q = group_by_agg(Query::table("R"), Proj::Left, "SUM", Proj::Right);
        let ctx = Schema::leaf(BaseType::Str);
        assert!(infer_query(&q, &env, &ctx).is_ok());
    }
}
