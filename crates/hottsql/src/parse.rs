//! A recursive-descent parser for HoTTSQL concrete syntax.
//!
//! The grammar follows the paper's examples (Sec. 3.2, Sec. 5):
//!
//! ```text
//! query    := unionq
//! unionq   := exceptq ("UNION" "ALL" exceptq)*
//! exceptq  := atomq ("EXCEPT" atomq)*
//! atomq    := "DISTINCT" atomq
//!           | "SELECT" proj "FROM" fromlist ["WHERE" pred]
//!           | ident
//!           | "(" query ")"
//! fromlist := atomq ("," atomq)*            (left-associated products)
//! pred     := orp;  orp := andp ("OR" andp)*;  andp := notp ("AND" notp)*
//! notp     := "NOT" notp | "TRUE" | "FALSE"
//!           | "EXISTS" atomq
//!           | "CASTPRED" proj "(" pred ")"
//!           | expr "=" expr
//!           | ident "(" expr,* ")"          (uninterpreted predicate)
//!           | ident                          (predicate meta-variable)
//! expr     := "CASTEXPR" proj "(" expr ")"
//!           | AGGNAME "(" query ")"
//!           | ident "(" expr,* ")"          (uninterpreted function)
//!           | integer | string | "TRUE" | "FALSE" constants
//!           | proj                           (implicit P2E)
//! proj     := projatom ("." projatom)*
//! projatom := "*" | "Left" | "Right" | "Empty" | ident
//!           | "(" proj "," proj ")"
//! ```
//!
//! Identifiers in query position are tables; in predicate position,
//! meta-variables; in projection position, attribute meta-variables.

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::error::{HottsqlError, Result};
use relalg::ops::Aggregate;
use relalg::Value;

/// Parses a HoTTSQL query.
///
/// # Errors
///
/// Returns [`HottsqlError::Parse`] with a byte offset on malformed input.
///
/// # Example
///
/// ```
/// use hottsql::parse::parse_query;
/// let q = parse_query("DISTINCT SELECT Right.a FROM R WHERE Right.a = Right.b").unwrap();
/// assert!(matches!(q, hottsql::Query::Distinct(_)));
/// ```
pub fn parse_query(input: &str) -> Result<Query> {
    let mut p = Parser::new(input);
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a HoTTSQL predicate (useful in tests and examples).
///
/// # Errors
///
/// Returns [`HottsqlError::Parse`] on malformed input.
pub fn parse_pred(input: &str) -> Result<Predicate> {
    let mut p = Parser::new(input);
    let b = p.pred()?;
    p.expect_eof()?;
    Ok(b)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Star,
    Dot,
    Comma,
    Eq,
    LParen,
    RParen,
    Eof,
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Parser {
        Parser {
            toks: lex(input),
            pos: 0,
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(HottsqlError::Parse {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input {:?}", self.peek()))
        }
    }

    fn query(&mut self) -> Result<Query> {
        let mut q = self.commaq()?;
        while self.peek_kw("UNION") {
            self.bump();
            self.expect_kw("ALL")?;
            let rhs = self.commaq()?;
            q = Query::union_all(q, rhs);
        }
        Ok(q)
    }

    /// Comma-products `q₁, q₂, …` (left-associated) with an optional
    /// postfix bare selection `… WHERE b` — so the `Display` output of
    /// [`Query::Product`] and [`Query::Where`] re-parses. `SELECT`'s own
    /// FROM/WHERE handling bypasses this level, so a `WHERE` after a
    /// FROM-list still binds to the whole list there.
    fn commaq(&mut self) -> Result<Query> {
        let mut q = self.exceptq()?;
        loop {
            if *self.peek() == Tok::Comma {
                self.bump();
                q = Query::product(q, self.exceptq()?);
            } else if self.eat_kw("WHERE") {
                let b = self.pred()?;
                q = Query::where_(q, b);
            } else {
                return Ok(q);
            }
        }
    }

    fn exceptq(&mut self) -> Result<Query> {
        let mut q = self.atomq()?;
        while self.eat_kw("EXCEPT") {
            let rhs = self.atomq()?;
            q = Query::except(q, rhs);
        }
        Ok(q)
    }

    fn atomq(&mut self) -> Result<Query> {
        if self.eat_kw("DISTINCT") {
            return Ok(Query::distinct(self.atomq()?));
        }
        if self.eat_kw("SELECT") {
            let p = self.proj()?;
            self.expect_kw("FROM")?;
            let mut from = self.atomq()?;
            while *self.peek() == Tok::Comma {
                self.bump();
                from = Query::product(from, self.atomq()?);
            }
            if self.eat_kw("WHERE") {
                let b = self.pred()?;
                from = Query::where_(from, b);
            }
            return Ok(Query::select(p, from));
        }
        match self.bump() {
            Tok::Ident(name) => Ok(Query::table(name)),
            Tok::LParen => {
                // Parenthesized query, a parenthesized FROM-list
                // `(q₁, q₂, …)` denoting their product (the paper writes
                // `FROM (FROM R1, R1), R2`; we accept `(R1, R1), R2`),
                // or a parenthesized bare selection `(q WHERE b)` as
                // emitted by `Query`'s `Display`.
                let mut q = self.query()?;
                while *self.peek() == Tok::Comma {
                    self.bump();
                    q = Query::product(q, self.query()?);
                }
                if self.eat_kw("WHERE") {
                    let b = self.pred()?;
                    q = Query::where_(q, b);
                }
                self.expect(Tok::RParen)?;
                Ok(q)
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected a query, found {other:?}"))
            }
        }
    }

    fn pred(&mut self) -> Result<Predicate> {
        let mut b = self.andp()?;
        while self.eat_kw("OR") {
            b = Predicate::or(b, self.andp()?);
        }
        Ok(b)
    }

    fn andp(&mut self) -> Result<Predicate> {
        let mut b = self.notp()?;
        while self.eat_kw("AND") {
            b = Predicate::and(b, self.notp()?);
        }
        Ok(b)
    }

    fn notp(&mut self) -> Result<Predicate> {
        if self.eat_kw("NOT") {
            return Ok(Predicate::not(self.notp()?));
        }
        if self.eat_kw("TRUE") {
            return Ok(Predicate::True);
        }
        if self.eat_kw("FALSE") {
            return Ok(Predicate::False);
        }
        if self.eat_kw("EXISTS") {
            return Ok(Predicate::exists(self.atomq()?));
        }
        if self.eat_kw("CASTPRED") {
            let p = self.proj()?;
            self.expect(Tok::LParen)?;
            let b = self.pred()?;
            self.expect(Tok::RParen)?;
            return Ok(Predicate::cast(p, b));
        }
        if *self.peek() == Tok::LParen {
            self.bump();
            let b = self.pred()?;
            self.expect(Tok::RParen)?;
            return Ok(b);
        }
        // Either `expr = expr`, an uninterpreted predicate call, or a
        // bare predicate meta-variable.
        let start = self.pos;
        let e = self.expr()?;
        if *self.peek() == Tok::Eq {
            self.bump();
            let rhs = self.expr()?;
            return Ok(Predicate::eq(e, rhs));
        }
        match e {
            // A bare call that is not followed by `=` is an
            // uninterpreted predicate.
            Expr::Fn(name, args) => Ok(Predicate::Uninterp(name, args)),
            // A bare identifier parsed as a projection meta-variable is
            // really a predicate meta-variable here.
            Expr::P2E(Proj::Var(name)) => Ok(Predicate::Var(name)),
            _ => {
                self.pos = start;
                self.err("expected a predicate")
            }
        }
    }

    fn expr(&mut self) -> Result<Expr> {
        if self.eat_kw("CASTEXPR") {
            let p = self.proj()?;
            self.expect(Tok::LParen)?;
            let e = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(Expr::cast(p, e));
        }
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Const(Value::str(s)))
            }
            Tok::Ident(name) => {
                // Aggregate or function call?
                if self.toks[self.pos + 1].0 == Tok::LParen {
                    if Aggregate::parse(&name).is_some() {
                        self.bump();
                        self.bump(); // (
                        let q = self.query()?;
                        self.expect(Tok::RParen)?;
                        return Ok(Expr::agg(name.to_ascii_uppercase(), q));
                    }
                    self.bump();
                    self.bump(); // (
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return Ok(Expr::func(name, args));
                }
                // Otherwise a projection path used as an expression.
                Ok(Expr::p2e(self.proj()?))
            }
            _ => Ok(Expr::p2e(self.proj()?)),
        }
    }

    fn proj(&mut self) -> Result<Proj> {
        let mut p = self.projatom()?;
        while *self.peek() == Tok::Dot {
            self.bump();
            let rhs = self.projatom()?;
            p = Proj::dot(p, rhs);
        }
        Ok(p)
    }

    fn projatom(&mut self) -> Result<Proj> {
        match self.bump() {
            Tok::Star => Ok(Proj::Star),
            Tok::Ident(s) if s.eq_ignore_ascii_case("Left") => Ok(Proj::Left),
            Tok::Ident(s) if s.eq_ignore_ascii_case("Right") => Ok(Proj::Right),
            Tok::Ident(s) if s.eq_ignore_ascii_case("Empty") => Ok(Proj::Empty),
            Tok::Ident(s) if s.eq_ignore_ascii_case("E2P") => {
                self.expect(Tok::LParen)?;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Proj::e2p(e))
            }
            Tok::Ident(s) => Ok(Proj::var(s)),
            Tok::LParen => {
                let a = self.proj()?;
                self.expect(Tok::Comma)?;
                let b = self.proj()?;
                self.expect(Tok::RParen)?;
                Ok(Proj::pair(a, b))
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected a projection, found {other:?}"))
            }
        }
    }
}

fn lex(input: &str) -> Vec<(Tok, usize)> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                out.push((Tok::Star, i));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i;
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] as char != quote {
                    s.push(bytes[i] as char);
                    i += 1;
                }
                i += 1; // closing quote (or EOF)
                out.push((Tok::Str(s), start));
            }
            '-' | '0'..='9' => {
                let start = i;
                let neg = c == '-';
                if neg {
                    i += 1;
                }
                let mut n: i64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    n = n * 10 + (bytes[i] - b'0') as i64;
                    i += 1;
                }
                out.push((Tok::Int(if neg { -n } else { n }), start));
            }
            _ if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                let mut s = String::new();
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        s.push(c);
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), start));
            }
            _ => {
                // Unknown character: emit as EOF marker position; the
                // parser will report an error here.
                out.push((Tok::Eof, i));
                i += 1;
            }
        }
    }
    out.push((Tok::Eof, input.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_products() {
        let q = parse_query("SELECT * FROM R, S, T").unwrap();
        match q {
            Query::Select(Proj::Star, from) => match *from {
                Query::Product(ab, c) => {
                    assert_eq!(*c, Query::table("T"));
                    assert!(matches!(*ab, Query::Product(_, _)));
                }
                other => panic!("expected product, got {other}"),
            },
            other => panic!("expected select, got {other}"),
        }
    }

    #[test]
    fn parses_fig1_rule_sides() {
        let lhs = parse_query("SELECT * FROM (R UNION ALL S) WHERE b").unwrap();
        let rhs =
            parse_query("(SELECT * FROM R WHERE b) UNION ALL (SELECT * FROM S WHERE b)").unwrap();
        assert!(matches!(lhs, Query::Select(_, _)));
        assert!(matches!(rhs, Query::UnionAll(_, _)));
    }

    #[test]
    fn parses_distinct_and_paths() {
        let q = parse_query(
            "DISTINCT SELECT Right.Left.a FROM R, R WHERE Right.Left.a = Right.Right.a",
        )
        .unwrap();
        match &q {
            Query::Distinct(inner) => match &**inner {
                Query::Select(p, _) => {
                    assert_eq!(p.to_string(), "Right.Left.a");
                }
                other => panic!("expected select, got {other}"),
            },
            other => panic!("expected distinct, got {other}"),
        }
    }

    #[test]
    fn parses_except_and_union_precedence() {
        let q = parse_query("R EXCEPT S UNION ALL T").unwrap();
        // EXCEPT binds tighter: (R EXCEPT S) UNION ALL T.
        assert!(matches!(q, Query::UnionAll(_, _)));
    }

    #[test]
    fn parses_exists_and_castpred() {
        let b = parse_pred("EXISTS (SELECT * FROM S WHERE CASTPRED Right (b))").unwrap();
        assert!(matches!(b, Predicate::Exists(_)));
        let b = parse_pred("CASTPRED Right (b)").unwrap();
        assert_eq!(b, Predicate::cast(Proj::Right, Predicate::var("b")));
    }

    #[test]
    fn parses_predicates() {
        let b = parse_pred("NOT (x = y) AND TRUE OR lt(Left, 30)").unwrap();
        assert!(matches!(b, Predicate::Or(_, _)));
        let b = parse_pred("b1 AND b2").unwrap();
        assert_eq!(
            b,
            Predicate::and(Predicate::var("b1"), Predicate::var("b2"))
        );
    }

    #[test]
    fn parses_aggregates_and_functions() {
        let b = parse_pred("SUM(SELECT Right.g FROM R) = add(1, 2)").unwrap();
        match b {
            Predicate::Eq(Expr::Agg(name, _), Expr::Fn(f, args)) => {
                assert_eq!(name, "SUM");
                assert_eq!(f, "add");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn parses_constants() {
        let b = parse_pred("Left.name = 'bob'").unwrap();
        assert!(matches!(b, Predicate::Eq(_, Expr::Const(Value::Str(_)))));
        let b = parse_pred("Left.age = -3").unwrap();
        assert!(matches!(b, Predicate::Eq(_, Expr::Const(Value::Int(-3)))));
    }

    #[test]
    fn parses_pair_projections() {
        let q = parse_query("SELECT (Left.p1, Right.p2) FROM R, S").unwrap();
        match q {
            Query::Select(Proj::Pair(_, _), _) => {}
            other => panic!("expected pair projection, got {other}"),
        }
    }

    #[test]
    fn reports_parse_errors_with_offsets() {
        let err = parse_query("SELECT FROM").unwrap_err();
        match err {
            HottsqlError::Parse { offset, .. } => assert!(offset > 0),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(parse_query("SELECT * FROM R extra garbage ^^^").is_err());
    }

    #[test]
    fn parses_nested_parens() {
        let q = parse_query("((R))").unwrap();
        assert_eq!(q, Query::table("R"));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("select * from r where true").unwrap();
        assert!(matches!(q, Query::Select(_, _)));
    }
}
