//! Readback: from a UniNomial normal form back to a HoTTSQL query.
//!
//! The certified optimizer works on denotations — it saturates and
//! extracts [`UExpr`]s — but must ship *plans*, i.e. [`Query`] syntax.
//! This module inverts Fig. 7 on the sum-product normal forms
//! ([`Spnf`]) the pipeline produces:
//!
//! - a sum of terms reads back as `UNION ALL`;
//! - a squash reads back as `DISTINCT`;
//! - a `¬` factor reads back as `EXCEPT`;
//! - a binder-free product of relation atoms over projections of the
//!   output tuple reads back as `FROM` products with `WHERE` filters;
//! - a `Σ`-term whose product contains an output equation reads back as
//!   `SELECT` over a `FROM`/`WHERE` body, with repeated binder
//!   occurrences becoming join equalities.
//!
//! Readback is *partial*: shapes outside this fragment (correlated
//! `EXISTS` factors, aggregates, unsourced binders) return `None`, and
//! the optimizer falls back to the input plan. It does not need to be
//! inverse-exact either — the caller re-denotes the result and proves
//! it equal to the input, so any readback slip is caught by the
//! certificate, never shipped.

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::env::QueryEnv;
use relalg::Schema;
use uninomial::normalize::{Atom, Spnf, SpnfTerm};
use uninomial::syntax::{Term, Var};

/// One step of a tuple path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    /// `.1`
    L,
    /// `.2`
    R,
}

fn proj_of_path(base: Proj, path: &[Step]) -> Proj {
    path.iter().fold(base, |acc, s| {
        Proj::dot(
            acc,
            match s {
                Step::L => Proj::Left,
                Step::R => Proj::Right,
            },
        )
    })
}

/// Reads a normal form back as a query over output variable `out`
/// (closed query, empty context): the result `q` satisfies
/// `⟦q⟧ () out = nf` up to provable equivalence. `None` outside the
/// supported fragment.
pub fn query_of_spnf(nf: &Spnf, out: &Var, env: &QueryEnv) -> Option<Query> {
    let mut branches = nf.terms.iter().map(|t| branch(t, out, env));
    let first = branches.next()??;
    branches.try_fold(first, |acc, b| Some(Query::union_all(acc, b?)))
}

fn branch(term: &SpnfTerm, out: &Var, env: &QueryEnv) -> Option<Query> {
    // DISTINCT: a lone squash factor.
    if term.vars.is_empty() && term.atoms.len() == 1 {
        if let Atom::Squash(inner) = &term.atoms[0] {
            return Some(Query::distinct(query_of_spnf(inner, out, env)?));
        }
    }
    // EXCEPT: exactly one ¬ factor next to an otherwise-readable term.
    if term.vars.is_empty() {
        let nots: Vec<usize> = term
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Atom::Not(_)))
            .map(|(i, _)| i)
            .collect();
        if let [i] = nots.as_slice() {
            let Atom::Not(inner) = &term.atoms[*i] else {
                unreachable!("filtered on Not");
            };
            let mut rest = term.clone();
            rest.atoms.remove(*i);
            let a = branch(&rest, out, env)?;
            let b = query_of_spnf(inner, out, env)?;
            return Some(Query::except(a, b));
        }
    }
    if term.vars.is_empty() {
        // Prefer the direct product form (`R`, `R, S`, `… WHERE b`);
        // fall back to a `SELECT` when atoms mix output paths with
        // other leaves (e.g. `R((t, 5))` after constant propagation).
        product_branch(term, out, env).or_else(|| select_branch(term, out, env))
    } else {
        select_branch(term, out, env)
    }
}

/// Binder-free branch: relation atoms over paths of `out` tile the
/// output schema into a `FROM` product; propositional factors become a
/// `WHERE`.
fn product_branch(term: &SpnfTerm, out: &Var, env: &QueryEnv) -> Option<Query> {
    let mut rels: Vec<(&str, Vec<Step>)> = Vec::new();
    let mut props: Vec<&Atom> = Vec::new();
    for a in &term.atoms {
        match a {
            Atom::Rel(r, t) => rels.push((r, out_path(t, out)?)),
            other => props.push(other),
        }
    }
    if rels.is_empty() {
        return None;
    }
    let from = tile(&out.schema, &rels, env)?;
    if props.is_empty() {
        return Some(from);
    }
    // WHERE context: node(empty, σ_out); `out` is reached by `Right`.
    let resolve = |v: &Var| (v == out).then_some(Proj::Right);
    let preds: Option<Vec<Predicate>> = props.iter().map(|a| pred_of_atom(a, &resolve)).collect();
    Some(Query::where_(from, Predicate::and_all(preds?)))
}

/// Recursively tiles an output-schema subtree with the relation atoms
/// whose paths lead into it.
fn tile(schema: &Schema, rels: &[(&str, Vec<Step>)], env: &QueryEnv) -> Option<Query> {
    if let [(name, path)] = rels {
        if path.is_empty() {
            return (env.table(name)? == schema).then(|| Query::table(*name));
        }
    }
    let (left, right) = match schema {
        Schema::Node(l, r) => (l, r),
        _ => return None,
    };
    let mut lefts = Vec::new();
    let mut rights = Vec::new();
    for (name, path) in rels {
        match path.split_first() {
            Some((Step::L, rest)) => lefts.push((*name, rest.to_vec())),
            Some((Step::R, rest)) => rights.push((*name, rest.to_vec())),
            None => return None, // a whole-tuple atom amid siblings
        }
    }
    Some(Query::product(
        tile(left, &lefts, env)?,
        tile(right, &rights, env)?,
    ))
}

/// The `.1`/`.2` path from `out` to this term, if it is such a path.
fn out_path(t: &Term, out: &Var) -> Option<Vec<Step>> {
    match t {
        Term::Var(v) if v == out => Some(Vec::new()),
        Term::Fst(x) => {
            let mut p = out_path(x, out)?;
            p.push(Step::L);
            Some(p)
        }
        Term::Snd(x) => {
            let mut p = out_path(x, out)?;
            p.push(Step::R);
            Some(p)
        }
        _ => None,
    }
}

/// A `Σ`-branch reads back as `SELECT … FROM R₁, … WHERE joins ∧
/// conditions`. The head is wherever the output variable is sourced:
/// either `out` occurs at a position inside a relation atom (the
/// normalizer substitutes projections into atoms), or an explicit
/// `(h = out)` equation provides the head term.
fn select_branch(term: &SpnfTerm, out: &Var, env: &QueryEnv) -> Option<Query> {
    // 1. Source variables (binders and the output) from relation atoms.
    let mut sources: Vec<Var> = term.vars.clone();
    sources.push(out.clone());
    let mut tables: Vec<&str> = Vec::new();
    let mut occurrences: Vec<(Var, Slot)> = Vec::new();
    let mut deferred: Vec<(Slot, Term)> = Vec::new();
    let mut props: Vec<&Atom> = Vec::new();
    for a in &term.atoms {
        match a {
            Atom::Rel(r, arg) => {
                let schema = env.table(r)?;
                let slot = tables.len();
                tables.push(r);
                let base = Vec::new();
                pattern(
                    arg,
                    schema,
                    &sources,
                    slot,
                    &base,
                    &mut occurrences,
                    &mut deferred,
                )?;
            }
            other => props.push(other),
        }
    }
    if tables.is_empty() {
        return None;
    }
    // 2. The head: the sourced position of `out`, or an explicit
    //    `(h = out)` equation among the propositional factors.
    let out_sourced = occurrences.iter().any(|(v, _)| v == out);
    let mut head_owned: Option<Term> = None;
    if out_sourced {
        head_owned = Some(Term::Var(out.clone()));
    } else {
        let mut keep: Vec<&Atom> = Vec::new();
        for a in props {
            if head_owned.is_none() {
                if let Atom::Eq(x, y) = a {
                    let candidate = if *x == Term::Var(out.clone()) {
                        Some(y)
                    } else if *y == Term::Var(out.clone()) {
                        Some(x)
                    } else {
                        None
                    };
                    if let Some(h) = candidate {
                        if !h.free_vars().contains(out) {
                            head_owned = Some(h.clone());
                            continue;
                        }
                    }
                }
            }
            keep.push(a);
        }
        props = keep;
    }
    let head = head_owned?;
    // Left-associated FROM product: table slot `i` of `n` sits under
    // `n-1-i` `Left` steps, then one `Right` unless it is the first.
    let n = tables.len();
    let full_path = |s: &Slot| -> Vec<Step> {
        let mut p = vec![Step::L; n - 1 - s.table];
        if s.table > 0 {
            p.push(Step::R);
        }
        p.extend_from_slice(&s.path);
        p
    };
    // Every binder needs at least one source occurrence; the output
    // variable joins them when it was sourced from an atom.
    let mut rep: Vec<(Var, Vec<Step>)> = Vec::new();
    for v in &term.vars {
        let path = occurrences
            .iter()
            .find(|(w, _)| w == v)
            .map(|(_, s)| full_path(s))?;
        rep.push((v.clone(), path));
    }
    if out_sourced {
        let path = occurrences
            .iter()
            .find(|(w, _)| w == out)
            .map(|(_, s)| full_path(s))?;
        rep.push((out.clone(), path));
    }
    let resolve = |v: &Var| -> Option<Proj> {
        rep.iter()
            .find(|(w, _)| w == v)
            .map(|(_, p)| proj_of_path(Proj::Right, p))
    };
    let mut preds: Vec<Predicate> = Vec::new();
    // Join equalities for repeated occurrences.
    for (v, slot) in &occurrences {
        let path = full_path(slot);
        let rep_path = &rep.iter().find(|(w, _)| w == v).expect("binder sourced").1;
        if &path != rep_path {
            preds.push(Predicate::eq(
                Expr::p2e(proj_of_path(Proj::Right, rep_path)),
                Expr::p2e(proj_of_path(Proj::Right, &path)),
            ));
        }
    }
    // Constraints from non-variable pattern leaves.
    for (slot, t) in &deferred {
        preds.push(Predicate::eq(
            Expr::p2e(proj_of_path(Proj::Right, &full_path(slot))),
            expr_of_term(t, &resolve)?,
        ));
    }
    // Remaining propositional factors.
    for a in &props {
        preds.push(pred_of_atom(a, &resolve)?);
    }
    let from = Query::product_all(tables.iter().map(|t| Query::table(*t)));
    let body = if preds.is_empty() {
        from
    } else {
        Query::where_(from, Predicate::and_all(preds))
    };
    let head_proj = proj_of_term(&head, &resolve)?;
    Some(Query::select(head_proj, body))
}

/// A position inside the FROM product: which table, and the path within
/// that table's tuple.
#[derive(Clone, Debug)]
struct Slot {
    table: usize,
    path: Vec<Step>,
}

/// Matches a relation-atom argument against the table schema: `Pair`
/// structure follows `Node` structure, binder variables record
/// occurrences, anything else records a deferred equality constraint.
fn pattern(
    arg: &Term,
    schema: &Schema,
    binders: &[Var],
    table: usize,
    path: &[Step],
    occurrences: &mut Vec<(Var, Slot)>,
    deferred: &mut Vec<(Slot, Term)>,
) -> Option<()> {
    let slot = || Slot {
        table,
        path: path.to_vec(),
    };
    match (arg, schema) {
        (Term::Var(v), s) if binders.contains(v) => {
            if v.schema != *s {
                return None;
            }
            occurrences.push((v.clone(), slot()));
            Some(())
        }
        (Term::Pair(a, b), Schema::Node(l, r)) => {
            let mut pl = path.to_vec();
            pl.push(Step::L);
            pattern(a, l, binders, table, &pl, occurrences, deferred)?;
            let mut pr = path.to_vec();
            pr.push(Step::R);
            pattern(b, r, binders, table, &pr, occurrences, deferred)
        }
        (Term::Unit, Schema::Empty) => Some(()),
        (other, _) => {
            // A non-variable leaf: the column must equal this term.
            if other.free_vars().iter().any(|v| !binders.contains(v)) {
                return None;
            }
            deferred.push((slot(), other.clone()));
            Some(())
        }
    }
}

/// Converts a propositional atom into a predicate under the variable
/// resolver.
fn pred_of_atom(a: &Atom, resolve: &dyn Fn(&Var) -> Option<Proj>) -> Option<Predicate> {
    match a {
        Atom::Eq(x, y) => Some(Predicate::eq(
            expr_of_term(x, resolve)?,
            expr_of_term(y, resolve)?,
        )),
        Atom::Pred(name, t) => Some(Predicate::cast(
            proj_of_term(t, resolve)?,
            Predicate::var(name.clone()),
        )),
        Atom::Rel(_, _) | Atom::Not(_) | Atom::Squash(_) => None,
    }
}

/// Converts a tuple term into a projection under the variable resolver.
fn proj_of_term(t: &Term, resolve: &dyn Fn(&Var) -> Option<Proj>) -> Option<Proj> {
    match t {
        Term::Var(v) => resolve(v),
        Term::Unit => Some(Proj::Empty),
        Term::Const(c) => Some(Proj::e2p(Expr::Const(c.clone()))),
        Term::Pair(a, b) => Some(Proj::pair(
            proj_of_term(a, resolve)?,
            proj_of_term(b, resolve)?,
        )),
        Term::Fst(x) => Some(Proj::dot(proj_of_term(x, resolve)?, Proj::Left)),
        Term::Snd(x) => Some(Proj::dot(proj_of_term(x, resolve)?, Proj::Right)),
        Term::Fn(_, _) => Some(Proj::e2p(expr_of_term(t, resolve)?)),
        Term::Agg(_, _, _) => None,
    }
}

/// Converts a tuple term into a scalar expression under the resolver.
fn expr_of_term(t: &Term, resolve: &dyn Fn(&Var) -> Option<Proj>) -> Option<Expr> {
    match t {
        Term::Const(c) => Some(Expr::Const(c.clone())),
        Term::Fn(f, args) => {
            let args: Option<Vec<Expr>> = args.iter().map(|a| expr_of_term(a, resolve)).collect();
            Some(Expr::func(f.clone(), args?))
        }
        other => Some(Expr::p2e(proj_of_term(other, resolve)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denote::denote_closed_query;
    use crate::parse::parse_query;
    use relalg::BaseType;
    use uninomial::normalize::{normalize, Trace};
    use uninomial::syntax::VarGen;

    fn env() -> QueryEnv {
        QueryEnv::new()
            .with_table("R", Schema::flat([BaseType::Int, BaseType::Int]))
            .with_table("S", Schema::flat([BaseType::Int, BaseType::Int]))
    }

    /// Denote → normalize → read back → re-denote must be provably
    /// equal to the original denotation.
    fn roundtrips(sql: &str) {
        let env = env();
        let q = parse_query(sql).unwrap();
        let mut gen = VarGen::new();
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        let mut tr = Trace::new();
        let nf = normalize(&e, &mut gen, &mut tr);
        let q2 = query_of_spnf(&nf, &t, &env)
            .unwrap_or_else(|| panic!("readback failed for {sql}: {nf}"));
        // Schemas agree…
        let s1 = crate::ty::infer_query(&q, &env, &Schema::Empty).unwrap();
        let s2 = crate::ty::infer_query(&q2, &env, &Schema::Empty)
            .unwrap_or_else(|e| panic!("{sql} → ill-typed {q2}: {e}"));
        assert_eq!(s1, s2, "{sql} → {q2}");
        // …and the denotations are provably equal.
        let e2 = crate::denote::denote_query(
            &q2,
            &env,
            &Schema::Empty,
            &Term::Unit,
            &Term::var(&t),
            &mut gen,
        )
        .unwrap();
        uninomial::prove_eq(&e, &e2, &mut gen)
            .unwrap_or_else(|err| panic!("{sql} → {q2} not provably equal: {err}"));
    }

    #[test]
    fn table_roundtrips() {
        roundtrips("R");
    }

    #[test]
    fn union_and_product_roundtrip() {
        roundtrips("R UNION ALL S");
        roundtrips("R, S");
    }

    #[test]
    fn distinct_and_except_roundtrip() {
        roundtrips("DISTINCT R");
        roundtrips("R EXCEPT S");
    }

    #[test]
    fn select_project_roundtrips() {
        roundtrips("SELECT Right.Left FROM R");
        roundtrips("DISTINCT SELECT Right.Left FROM R");
    }

    #[test]
    fn join_with_where_roundtrips() {
        roundtrips(
            "DISTINCT SELECT Right.Left.Left FROM R, S \
             WHERE Right.Left.Left = Right.Right.Left",
        );
    }

    #[test]
    fn three_way_join_roundtrips() {
        // Three tables exercise the middle-slot path of the FROM
        // product (left-assoc: ((R, S), T)).
        let env = env().with_table("T", Schema::flat([BaseType::Int, BaseType::Int]));
        let q = parse_query(
            "DISTINCT SELECT Right.Left.Left.Left FROM R, S, T \
             WHERE Right.Left.Left.Right = Right.Left.Right.Left \
             AND Right.Left.Right.Right = Right.Right.Left",
        )
        .unwrap();
        let mut gen = VarGen::new();
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        let mut tr = Trace::new();
        let nf = normalize(&e, &mut gen, &mut tr);
        let q2 = query_of_spnf(&nf, &t, &env).expect("3-way join reads back");
        let s2 = crate::ty::infer_query(&q2, &env, &Schema::Empty)
            .unwrap_or_else(|e| panic!("ill-typed {q2}: {e}"));
        assert_eq!(
            s2,
            crate::ty::infer_query(&q, &env, &Schema::Empty).unwrap()
        );
        let e2 = crate::denote::denote_query(
            &q2,
            &env,
            &Schema::Empty,
            &Term::Unit,
            &Term::var(&t),
            &mut gen,
        )
        .unwrap();
        uninomial::prove_eq(&e, &e2, &mut gen)
            .unwrap_or_else(|err| panic!("{q2} not provably equal: {err}"));
    }

    #[test]
    fn constant_filter_roundtrips() {
        roundtrips("DISTINCT SELECT Right.Left FROM R WHERE Right.Right = 5");
    }

    #[test]
    fn unsupported_shapes_return_none() {
        // A normal form with an unsourced binder cannot read back.
        let mut gen = VarGen::new();
        let out = gen.fresh(Schema::leaf(BaseType::Int));
        let v = gen.fresh(Schema::leaf(BaseType::Int));
        let e = uninomial::UExpr::sum(
            v.clone(),
            uninomial::UExpr::eq(Term::var(&out), Term::var(&v)),
        );
        let mut tr = Trace::new();
        let nf = normalize(&e, &mut gen, &mut tr);
        // (May normalize to something readable; only assert no panic.)
        let _ = query_of_spnf(&nf, &out, &env());
    }
}
