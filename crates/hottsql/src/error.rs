//! Error types for the `hottsql` crate.

use relalg::Schema;
use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, HottsqlError>;

/// Errors raised by typing, parsing, denotation, or evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HottsqlError {
    /// An undeclared table / meta-variable.
    Unbound(String),
    /// A typing error with a description and the offending context.
    Type {
        /// Human-readable description.
        message: String,
        /// The context schema at the error site.
        context: Schema,
    },
    /// A parse error with position information.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// An evaluation error (delegated from `relalg` or symbol lookup).
    Eval(String),
}

impl HottsqlError {
    pub(crate) fn ty(message: impl Into<String>, context: &Schema) -> HottsqlError {
        HottsqlError::Type {
            message: message.into(),
            context: context.clone(),
        }
    }
}

impl fmt::Display for HottsqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HottsqlError::Unbound(n) => write!(f, "unbound name: {n}"),
            HottsqlError::Type { message, context } => {
                write!(f, "type error: {message} (context {context})")
            }
            HottsqlError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            HottsqlError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for HottsqlError {}

impl From<relalg::RelalgError> for HottsqlError {
    fn from(e: relalg::RelalgError) -> Self {
        HottsqlError::Eval(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = HottsqlError::Unbound("R".into());
        assert_eq!(e.to_string(), "unbound name: R");
        let e = HottsqlError::ty("Left on a leaf", &Schema::Empty);
        assert!(e.to_string().contains("type error"));
    }

    #[test]
    fn relalg_errors_convert() {
        let e: HottsqlError = relalg::RelalgError::TypeError("x".into()).into();
        assert!(matches!(e, HottsqlError::Eval(_)));
    }
}
