//! Concrete evaluation of HoTTSQL queries against database instances.
//!
//! This is the *executable* reading of Fig. 7: instead of producing a
//! symbolic UniNomial expression, each construct is computed directly on
//! [`relalg::Relation`]s. The differential-testing harness runs both
//! sides of every proved rewrite rule through this evaluator on random
//! instances; integration tests additionally cross-check this evaluator
//! against the symbolic denotation evaluated with [`uninomial::eval`].

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::env::QueryEnv;
use crate::error::{HottsqlError, Result};
use crate::ty::{infer_proj, infer_query};
use relalg::ops::{self, Aggregate};
use relalg::{Relation, Schema, Tuple, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Concrete interpretation of a predicate meta-variable.
pub type PredImpl = Rc<dyn Fn(&Tuple) -> bool>;
/// Concrete interpretation of an expression meta-variable.
pub type ExprImpl = Rc<dyn Fn(&Tuple) -> Value>;
/// Concrete interpretation of a projection meta-variable.
pub type ProjImpl = Rc<dyn Fn(&Tuple) -> Tuple>;
/// Concrete interpretation of an uninterpreted scalar function.
pub type FnImpl = Rc<dyn Fn(&[Value]) -> Value>;
/// Concrete interpretation of an uninterpreted predicate.
pub type UpredImpl = Rc<dyn Fn(&[Value]) -> bool>;

/// A database instance: concrete interpretations for every table and
/// meta-variable a query mentions.
#[derive(Clone, Default)]
pub struct Instance {
    /// Table contents.
    pub tables: BTreeMap<String, Relation>,
    /// Predicate meta-variable implementations.
    pub preds: HashMap<String, PredImpl>,
    /// Expression meta-variable implementations.
    pub exprs: HashMap<String, ExprImpl>,
    /// Projection meta-variable implementations.
    pub projs: HashMap<String, ProjImpl>,
    /// Uninterpreted scalar functions.
    pub fns: HashMap<String, FnImpl>,
    /// Uninterpreted predicates.
    pub upreds: HashMap<String, UpredImpl>,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("tables", &self.tables)
            .field("preds", &self.preds.keys().collect::<Vec<_>>())
            .field("exprs", &self.exprs.keys().collect::<Vec<_>>())
            .field("projs", &self.projs.keys().collect::<Vec<_>>())
            .field("fns", &self.fns.keys().collect::<Vec<_>>())
            .field("upreds", &self.upreds.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Adds a table.
    pub fn with_table(mut self, name: impl Into<String>, r: Relation) -> Instance {
        self.tables.insert(name.into(), r);
        self
    }

    /// Adds a predicate meta-variable implementation.
    pub fn with_pred(
        mut self,
        name: impl Into<String>,
        p: impl Fn(&Tuple) -> bool + 'static,
    ) -> Instance {
        self.preds.insert(name.into(), Rc::new(p));
        self
    }

    /// Adds an expression meta-variable implementation.
    pub fn with_expr(
        mut self,
        name: impl Into<String>,
        e: impl Fn(&Tuple) -> Value + 'static,
    ) -> Instance {
        self.exprs.insert(name.into(), Rc::new(e));
        self
    }

    /// Adds a projection meta-variable implementation.
    pub fn with_proj(
        mut self,
        name: impl Into<String>,
        p: impl Fn(&Tuple) -> Tuple + 'static,
    ) -> Instance {
        self.projs.insert(name.into(), Rc::new(p));
        self
    }

    /// Adds an uninterpreted scalar function.
    pub fn with_fn(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Value + 'static,
    ) -> Instance {
        self.fns.insert(name.into(), Rc::new(f));
        self
    }

    /// Adds an uninterpreted predicate.
    pub fn with_upred(
        mut self,
        name: impl Into<String>,
        p: impl Fn(&[Value]) -> bool + 'static,
    ) -> Instance {
        self.upreds.insert(name.into(), Rc::new(p));
        self
    }
}

/// Evaluates `Γ ⊢ q : σ` under context tuple `g` to a concrete relation.
///
/// # Errors
///
/// Returns a [`HottsqlError`] for typing problems, unbound
/// interpretations, or aggregate errors (e.g. `SUM` over `ω`).
pub fn eval_query(
    q: &Query,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    g: &Tuple,
) -> Result<Relation> {
    match q {
        Query::Table(name) => {
            infer_query(q, env, ctx)?;
            inst.tables
                .get(name)
                .cloned()
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))
        }
        Query::Select(p, inner) => {
            let r = eval_query(inner, env, inst, ctx, g)?;
            let sigma_inner = infer_query(inner, env, ctx)?;
            let select_ctx = Schema::node(ctx.clone(), sigma_inner);
            let out_schema = infer_proj(p, env, &select_ctx)?;
            let mut out = Relation::empty(out_schema);
            for (t, c) in r.iter() {
                let gt = Tuple::pair(g.clone(), t.clone());
                let projected = eval_proj(p, env, inst, &select_ctx, &gt)?;
                out.try_insert_with(projected, c)?;
            }
            Ok(out)
        }
        Query::Product(a, b) => Ok(ops::product(
            &eval_query(a, env, inst, ctx, g)?,
            &eval_query(b, env, inst, ctx, g)?,
        )),
        Query::Where(inner, b) => {
            let r = eval_query(inner, env, inst, ctx, g)?;
            let sigma = infer_query(inner, env, ctx)?;
            let where_ctx = Schema::node(ctx.clone(), sigma);
            let mut out = Relation::empty(r.schema().clone());
            for (t, c) in r.iter() {
                let gt = Tuple::pair(g.clone(), t.clone());
                if eval_pred(b, env, inst, &where_ctx, &gt)? {
                    out.insert_with(t.clone(), c);
                }
            }
            Ok(out)
        }
        Query::UnionAll(a, b) => Ok(ops::union_all(
            &eval_query(a, env, inst, ctx, g)?,
            &eval_query(b, env, inst, ctx, g)?,
        )?),
        Query::Except(a, b) => Ok(ops::except(
            &eval_query(a, env, inst, ctx, g)?,
            &eval_query(b, env, inst, ctx, g)?,
        )?),
        Query::Distinct(inner) => Ok(ops::distinct(&eval_query(inner, env, inst, ctx, g)?)),
    }
}

/// Evaluates a predicate under context tuple `gamma`.
///
/// # Errors
///
/// See [`eval_query`].
pub fn eval_pred(
    b: &Predicate,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    gamma: &Tuple,
) -> Result<bool> {
    match b {
        Predicate::Eq(e1, e2) => {
            Ok(eval_expr(e1, env, inst, ctx, gamma)? == eval_expr(e2, env, inst, ctx, gamma)?)
        }
        Predicate::Not(inner) => Ok(!eval_pred(inner, env, inst, ctx, gamma)?),
        Predicate::And(x, y) => {
            Ok(eval_pred(x, env, inst, ctx, gamma)? && eval_pred(y, env, inst, ctx, gamma)?)
        }
        Predicate::Or(x, y) => {
            Ok(eval_pred(x, env, inst, ctx, gamma)? || eval_pred(y, env, inst, ctx, gamma)?)
        }
        Predicate::True => Ok(true),
        Predicate::False => Ok(false),
        Predicate::CastPred(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            let cast = eval_proj(p, env, inst, ctx, gamma)?;
            eval_pred(inner, env, inst, &target, &cast)
        }
        Predicate::Exists(q) => Ok(!eval_query(q, env, inst, ctx, gamma)?.is_empty()),
        Predicate::Var(name) => {
            crate::ty::check_pred(b, env, ctx)?;
            let p = inst
                .preds
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(p(gamma))
        }
        Predicate::Uninterp(name, args) => {
            let f = inst
                .upreds
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, env, inst, ctx, gamma)?);
            }
            Ok(f(&vals))
        }
    }
}

/// Evaluates an expression under context tuple `gamma`.
///
/// # Errors
///
/// See [`eval_query`].
pub fn eval_expr(
    e: &Expr,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    gamma: &Tuple,
) -> Result<Value> {
    match e {
        Expr::P2E(p) => match eval_proj(p, env, inst, ctx, gamma)? {
            Tuple::Leaf(v) => Ok(v),
            other => Err(HottsqlError::Eval(format!(
                "projection produced non-scalar {other}"
            ))),
        },
        Expr::Fn(name, args) => {
            let f = inst
                .fns
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, env, inst, ctx, gamma)?);
            }
            Ok(f(&vals))
        }
        Expr::Agg(name, q) => {
            let agg = Aggregate::parse(name)
                .ok_or_else(|| HottsqlError::Unbound(format!("aggregate {name}")))?;
            let r = eval_query(q, env, inst, ctx, gamma)?;
            Ok(relalg::ops::aggregate(agg, &r)?)
        }
        Expr::CastExpr(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            let cast = eval_proj(p, env, inst, ctx, gamma)?;
            eval_expr(inner, env, inst, &target, &cast)
        }
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => {
            crate::ty::infer_expr(e, env, ctx)?;
            let f = inst
                .exprs
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(f(gamma))
        }
    }
}

/// Evaluates a projection applied to tuple `gamma`.
///
/// # Errors
///
/// See [`eval_query`].
pub fn eval_proj(
    p: &Proj,
    env: &QueryEnv,
    inst: &Instance,
    ctx: &Schema,
    gamma: &Tuple,
) -> Result<Tuple> {
    match p {
        Proj::Star => Ok(gamma.clone()),
        Proj::Left => gamma
            .fst()
            .cloned()
            .ok_or_else(|| HottsqlError::Eval(format!("Left on non-pair {gamma}"))),
        Proj::Right => gamma
            .snd()
            .cloned()
            .ok_or_else(|| HottsqlError::Eval(format!("Right on non-pair {gamma}"))),
        Proj::Empty => Ok(Tuple::Unit),
        Proj::Dot(p1, p2) => {
            let mid_schema = infer_proj(p1, env, ctx)?;
            let mid = eval_proj(p1, env, inst, ctx, gamma)?;
            eval_proj(p2, env, inst, &mid_schema, &mid)
        }
        Proj::Pair(p1, p2) => Ok(Tuple::pair(
            eval_proj(p1, env, inst, ctx, gamma)?,
            eval_proj(p2, env, inst, ctx, gamma)?,
        )),
        Proj::E2P(e) => Ok(Tuple::Leaf(eval_expr(e, env, inst, ctx, gamma)?)),
        Proj::Var(name) => {
            infer_proj(p, env, ctx)?;
            let f = inst
                .projs
                .get(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            Ok(f(gamma))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{BaseType, Card};

    fn int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    /// The running example of Sec. 2: R(a, b) with instance
    /// {(1,40), (2,40), (2,50)}.
    fn sec2_setup() -> (QueryEnv, Instance) {
        let sigma = Schema::node(int(), int());
        let r = Relation::from_tuples(
            sigma.clone(),
            [
                Tuple::pair(Tuple::int(1), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(40)),
                Tuple::pair(Tuple::int(2), Tuple::int(50)),
            ],
        )
        .unwrap();
        (
            QueryEnv::new().with_table("R", sigma),
            Instance::new().with_table("R", r),
        )
    }

    #[test]
    fn q1_projection_returns_bag() {
        // Q1: SELECT a FROM R returns {1, 2, 2}.
        let (env, inst) = sec2_setup();
        let q = Query::select(Proj::path([Proj::Right, Proj::Left]), Query::table("R"));
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(r.multiplicity(&Tuple::int(1)), Card::Fin(1));
        assert_eq!(r.multiplicity(&Tuple::int(2)), Card::Fin(2));
    }

    #[test]
    fn q2_distinct_returns_set() {
        // Q2: SELECT DISTINCT a FROM R returns {1, 2}.
        let (env, inst) = sec2_setup();
        let q = Query::distinct(Query::select(
            Proj::path([Proj::Right, Proj::Left]),
            Query::table("R"),
        ));
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(r.multiplicity(&Tuple::int(1)), Card::ONE);
        assert_eq!(r.multiplicity(&Tuple::int(2)), Card::ONE);
        assert_eq!(r.support_size(), 2);
    }

    #[test]
    fn q3_redundant_self_join_equals_q2() {
        // Q3: SELECT DISTINCT x.a FROM R x, R y WHERE x.a = y.a  ≡  Q2.
        let (env, inst) = sec2_setup();
        let x_a = Proj::path([Proj::Right, Proj::Left, Proj::Left]);
        let y_a = Proj::path([Proj::Right, Proj::Right, Proj::Left]);
        let q3 = Query::distinct(Query::select(
            x_a.clone(),
            Query::where_(
                Query::product(Query::table("R"), Query::table("R")),
                Predicate::eq(Expr::p2e(x_a), Expr::p2e(y_a)),
            ),
        ));
        let q2 = Query::distinct(Query::select(
            Proj::path([Proj::Right, Proj::Left]),
            Query::table("R"),
        ));
        let r3 = eval_query(&q3, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        let r2 = eval_query(&q2, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert!(r3.bag_eq(&r2));
    }

    #[test]
    fn where_with_meta_predicate() {
        let (env, inst) = sec2_setup();
        let env = env.with_pred(
            "young",
            Schema::node(Schema::Empty, Schema::node(int(), int())),
        );
        let inst = inst.with_pred("young", |gt: &Tuple| {
            // predicate over ((), (a, b)): keep a = 2
            gt.snd()
                .and_then(Tuple::fst)
                .and_then(Tuple::value)
                .and_then(Value::as_int)
                == Some(2)
        });
        let q = Query::where_(Query::table("R"), Predicate::var("young"));
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(r.total_multiplicity(), Card::Fin(2));
    }

    #[test]
    fn exists_correlated_subquery() {
        // SELECT * FROM R WHERE EXISTS (R2 WHERE R2.a = outer R.a):
        // with R2 = {(2, 99)}, keeps only a = 2 rows.
        let (env, inst) = sec2_setup();
        let sigma = Schema::node(int(), int());
        let env = env.with_table("R2", sigma.clone());
        let r2 =
            Relation::from_tuples(sigma, [Tuple::pair(Tuple::int(2), Tuple::int(99))]).unwrap();
        let inst = inst.with_table("R2", r2);
        // Context of the inner WHERE: node(node(empty, σR), σR2).
        let outer_a = Proj::path([Proj::Left, Proj::Right, Proj::Left]);
        let inner_a = Proj::path([Proj::Right, Proj::Left]);
        let subquery = Query::where_(
            Query::table("R2"),
            Predicate::eq(Expr::p2e(inner_a), Expr::p2e(outer_a)),
        );
        let q = Query::where_(Query::table("R"), Predicate::exists(subquery));
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(r.total_multiplicity(), Card::Fin(2)); // the two a=2 rows
    }

    #[test]
    fn aggregate_expression() {
        // R WHERE SUM(SELECT a FROM R) = 5 keeps everything (1+2+2 = 5).
        let (env, inst) = sec2_setup();
        let inner = Query::select(Proj::path([Proj::Right, Proj::Left]), Query::table("R"));
        let q = Query::where_(
            Query::table("R"),
            Predicate::eq(Expr::agg("SUM", inner), Expr::int(5)),
        );
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(r.total_multiplicity(), Card::Fin(3));
    }

    #[test]
    fn except_and_union() {
        let (env, inst) = sec2_setup();
        let q = Query::except(
            Query::union_all(Query::table("R"), Query::table("R")),
            Query::table("R"),
        );
        // Every tuple of R appears in the subtrahend, so nothing survives.
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn unbound_table_reports_error() {
        let (env, inst) = sec2_setup();
        let env = env.with_table("Ghost", int());
        let r = eval_query(
            &Query::table("Ghost"),
            &env,
            &inst,
            &Schema::Empty,
            &Tuple::Unit,
        );
        assert!(matches!(r, Err(HottsqlError::Unbound(_))));
    }

    #[test]
    fn meta_projection_instance() {
        let (env, inst) = sec2_setup();
        let sigma = Schema::node(int(), int());
        let select_ctx = Schema::node(Schema::Empty, sigma);
        let env = env.with_proj("k", select_ctx, int());
        let inst = inst.with_proj("k", |gt: &Tuple| {
            gt.snd().and_then(Tuple::fst).cloned().expect("pair")
        });
        let q = Query::select(Proj::var("k"), Query::table("R"));
        let r = eval_query(&q, &env, &inst, &Schema::Empty, &Tuple::Unit).unwrap();
        assert_eq!(r.multiplicity(&Tuple::int(2)), Card::Fin(2));
    }
}
