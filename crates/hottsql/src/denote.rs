//! The denotational semantics of HoTTSQL (Fig. 7 of the paper).
//!
//! A query under context `Γ` denotes a function
//! `Tuple Γ → Tuple σ → U`; here the two arguments are symbolic
//! [`Term`]s (typically free variables `g` and `t`), and the result is a
//! [`UExpr`] over them. The rules are transcribed from Fig. 7:
//!
//! ```text
//! ⟦Γ ⊢ table : σ⟧ g t        = ⟦table⟧ t
//! ⟦Γ ⊢ SELECT p q : σ⟧ g t   = Σ t′. (⟦p⟧ (g,t′) = t) × ⟦q⟧ g t′
//! ⟦Γ ⊢ FROM q₁,q₂⟧ g t       = ⟦q₁⟧ g t.1 × ⟦q₂⟧ g t.2
//! ⟦Γ ⊢ q WHERE b⟧ g t        = ⟦q⟧ g t × ⟦b⟧ (g,t)
//! ⟦Γ ⊢ q₁ UNION ALL q₂⟧ g t  = ⟦q₁⟧ g t + ⟦q₂⟧ g t
//! ⟦Γ ⊢ q₁ EXCEPT q₂⟧ g t     = ⟦q₁⟧ g t × (⟦q₂⟧ g t → 0)
//! ⟦Γ ⊢ DISTINCT q⟧ g t       = ‖⟦q⟧ g t‖
//! ```
//!
//! Meta-variables denote uninterpreted symbols: a relation meta-variable
//! becomes a [`UExpr::Rel`] atom; a predicate meta-variable becomes a
//! [`UExpr::Pred`] atom on the context tuple; expression and projection
//! meta-variables become uninterpreted term functions of the context.

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::env::QueryEnv;
use crate::error::Result;
use crate::ty::{infer_proj, infer_query};
use relalg::Schema;
use uninomial::syntax::{Term, UExpr, Var, VarGen};

/// Denotes a query: the multiplicity of tuple-term `t` in `q` evaluated
/// under context tuple-term `g` (of schema `ctx`).
///
/// # Errors
///
/// Propagates typing errors ([`crate::error::HottsqlError`]).
pub fn denote_query(
    q: &Query,
    env: &QueryEnv,
    ctx: &Schema,
    g: &Term,
    t: &Term,
    gen: &mut VarGen,
) -> Result<UExpr> {
    match q {
        Query::Table(name) => {
            // Tables ignore the context (Fig. 7 row 1).
            infer_query(q, env, ctx)?;
            Ok(UExpr::rel(name.clone(), t.clone()))
        }
        Query::Select(p, inner) => {
            let sigma_inner = infer_query(inner, env, ctx)?;
            let tv = gen.fresh(sigma_inner);
            let select_ctx = Schema::node(ctx.clone(), tv.schema.clone());
            let projected = denote_proj(
                p,
                env,
                &select_ctx,
                &Term::pair(g.clone(), Term::var(&tv)),
                gen,
            )?;
            let body = UExpr::mul(
                UExpr::eq(projected, t.clone()),
                denote_query(inner, env, ctx, g, &Term::var(&tv), gen)?,
            );
            Ok(UExpr::sum(tv, body))
        }
        Query::Product(a, b) => Ok(UExpr::mul(
            denote_query(a, env, ctx, g, &Term::fst(t.clone()), gen)?,
            denote_query(b, env, ctx, g, &Term::snd(t.clone()), gen)?,
        )),
        Query::Where(inner, b) => {
            let sigma = infer_query(inner, env, ctx)?;
            let where_ctx = Schema::node(ctx.clone(), sigma);
            Ok(UExpr::mul(
                denote_query(inner, env, ctx, g, t, gen)?,
                denote_pred(b, env, &where_ctx, &Term::pair(g.clone(), t.clone()), gen)?,
            ))
        }
        Query::UnionAll(a, b) => Ok(UExpr::add(
            denote_query(a, env, ctx, g, t, gen)?,
            denote_query(b, env, ctx, g, t, gen)?,
        )),
        Query::Except(a, b) => Ok(UExpr::mul(
            denote_query(a, env, ctx, g, t, gen)?,
            UExpr::not(denote_query(b, env, ctx, g, t, gen)?),
        )),
        Query::Distinct(inner) => Ok(UExpr::squash(denote_query(inner, env, ctx, g, t, gen)?)),
    }
}

/// Denotes a predicate under context tuple-term `gamma` of schema `ctx`.
///
/// # Errors
///
/// Propagates typing errors.
pub fn denote_pred(
    b: &Predicate,
    env: &QueryEnv,
    ctx: &Schema,
    gamma: &Term,
    gen: &mut VarGen,
) -> Result<UExpr> {
    match b {
        Predicate::Eq(e1, e2) => Ok(UExpr::eq(
            denote_expr(e1, env, ctx, gamma, gen)?,
            denote_expr(e2, env, ctx, gamma, gen)?,
        )),
        Predicate::Not(inner) => Ok(UExpr::not(denote_pred(inner, env, ctx, gamma, gen)?)),
        Predicate::And(x, y) => Ok(UExpr::mul(
            denote_pred(x, env, ctx, gamma, gen)?,
            denote_pred(y, env, ctx, gamma, gen)?,
        )),
        Predicate::Or(x, y) => Ok(UExpr::squash(UExpr::add(
            denote_pred(x, env, ctx, gamma, gen)?,
            denote_pred(y, env, ctx, gamma, gen)?,
        ))),
        Predicate::True => Ok(UExpr::One),
        Predicate::False => Ok(UExpr::Zero),
        Predicate::CastPred(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            let cast = denote_proj(p, env, ctx, gamma, gen)?;
            denote_pred(inner, env, &target, &cast, gen)
        }
        Predicate::Exists(q) => {
            let sigma = infer_query(q, env, ctx)?;
            let tv = gen.fresh(sigma);
            let body = denote_query(q, env, ctx, gamma, &Term::var(&tv), gen)?;
            Ok(UExpr::squash(UExpr::sum(tv, body)))
        }
        Predicate::Var(name) => {
            crate::ty::check_pred(b, env, ctx)?;
            Ok(UExpr::pred(name.clone(), gamma.clone()))
        }
        Predicate::Uninterp(name, args) => {
            let mut terms = Vec::with_capacity(args.len());
            for a in args {
                terms.push(denote_expr(a, env, ctx, gamma, gen)?);
            }
            // Tuple the arguments right-nested.
            let arg = terms
                .into_iter()
                .rev()
                .reduce(|acc, t| Term::pair(t, acc))
                .unwrap_or(Term::Unit);
            Ok(UExpr::pred(name.clone(), arg))
        }
    }
}

/// Denotes an expression to a scalar [`Term`] under context tuple-term
/// `gamma`.
///
/// # Errors
///
/// Propagates typing errors.
pub fn denote_expr(
    e: &Expr,
    env: &QueryEnv,
    ctx: &Schema,
    gamma: &Term,
    gen: &mut VarGen,
) -> Result<Term> {
    match e {
        Expr::P2E(p) => denote_proj(p, env, ctx, gamma, gen),
        Expr::Fn(name, args) => {
            let mut terms = Vec::with_capacity(args.len());
            for a in args {
                terms.push(denote_expr(a, env, ctx, gamma, gen)?);
            }
            Ok(Term::Fn(name.clone(), terms))
        }
        Expr::Agg(name, q) => {
            let sigma = infer_query(q, env, ctx)?;
            let tv = gen.fresh(sigma);
            let body = denote_query(q, env, ctx, gamma, &Term::var(&tv), gen)?;
            Ok(Term::agg(name.clone(), tv, body))
        }
        Expr::CastExpr(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            let cast = denote_proj(p, env, ctx, gamma, gen)?;
            denote_expr(inner, env, &target, &cast, gen)
        }
        Expr::Const(v) => Ok(Term::Const(v.clone())),
        Expr::Var(name) => {
            crate::ty::infer_expr(e, env, ctx)?;
            Ok(Term::Fn(name.clone(), vec![gamma.clone()]))
        }
    }
}

/// Denotes a projection applied to tuple-term `gamma` of schema `ctx`.
///
/// # Errors
///
/// Propagates typing errors.
pub fn denote_proj(
    p: &Proj,
    env: &QueryEnv,
    ctx: &Schema,
    gamma: &Term,
    gen: &mut VarGen,
) -> Result<Term> {
    match p {
        Proj::Star => Ok(gamma.clone()),
        Proj::Left => {
            infer_proj(p, env, ctx)?;
            Ok(Term::fst(gamma.clone()))
        }
        Proj::Right => {
            infer_proj(p, env, ctx)?;
            Ok(Term::snd(gamma.clone()))
        }
        Proj::Empty => Ok(Term::Unit),
        Proj::Dot(p1, p2) => {
            let mid_schema = infer_proj(p1, env, ctx)?;
            let mid = denote_proj(p1, env, ctx, gamma, gen)?;
            denote_proj(p2, env, &mid_schema, &mid, gen)
        }
        Proj::Pair(p1, p2) => Ok(Term::pair(
            denote_proj(p1, env, ctx, gamma, gen)?,
            denote_proj(p2, env, ctx, gamma, gen)?,
        )),
        Proj::E2P(e) => denote_expr(e, env, ctx, gamma, gen),
        Proj::Var(name) => {
            infer_proj(p, env, ctx)?;
            Ok(Term::Fn(name.clone(), vec![gamma.clone()]))
        }
    }
}

/// Denotes a *closed* query (empty outer context) as a function of a
/// single tuple variable: returns `(t, ⟦q⟧ () t)`.
///
/// # Errors
///
/// Propagates typing errors.
pub fn denote_closed_query(q: &Query, env: &QueryEnv, gen: &mut VarGen) -> Result<(Var, UExpr)> {
    let sigma = infer_query(q, env, &Schema::Empty)?;
    let t = gen.fresh(sigma);
    let e = denote_query(q, env, &Schema::Empty, &Term::Unit, &Term::var(&t), gen)?;
    Ok((t, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::BaseType;
    use uninomial::normalize::{normalize, Trace};
    use uninomial::prove_eq;

    fn int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn env_rs() -> QueryEnv {
        QueryEnv::new()
            .with_table("R", int())
            .with_table("S", int())
    }

    #[test]
    fn table_denotes_to_rel_atom() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let (t, e) = denote_closed_query(&Query::table("R"), &env, &mut gen).unwrap();
        assert_eq!(e, UExpr::rel("R", Term::var(&t)));
    }

    #[test]
    fn union_denotes_to_add() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let q = Query::union_all(Query::table("R"), Query::table("S"));
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        assert_eq!(
            e,
            UExpr::add(
                UExpr::rel("R", Term::var(&t)),
                UExpr::rel("S", Term::var(&t))
            )
        );
    }

    #[test]
    fn product_denotes_to_mul_of_projections() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let q = Query::product(Query::table("R"), Query::table("S"));
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        assert_eq!(
            e,
            UExpr::mul(
                UExpr::rel("R", Term::fst(Term::var(&t))),
                UExpr::rel("S", Term::snd(Term::var(&t)))
            )
        );
    }

    #[test]
    fn distinct_denotes_to_squash() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let q = Query::distinct(Query::table("R"));
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        assert_eq!(e, UExpr::squash(UExpr::rel("R", Term::var(&t))));
    }

    #[test]
    fn except_denotes_to_negation() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let q = Query::except(Query::table("R"), Query::table("S"));
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        assert_eq!(
            e,
            UExpr::mul(
                UExpr::rel("R", Term::var(&t)),
                UExpr::not(UExpr::rel("S", Term::var(&t)))
            )
        );
    }

    #[test]
    fn where_extends_context_for_predicate() {
        // R WHERE b, with b over node(empty, σR): denotes to
        // R(t) × b(((), t)).
        let sigma_b = Schema::node(Schema::Empty, int());
        let env = env_rs().with_pred("b", sigma_b);
        let mut gen = VarGen::new();
        let q = Query::where_(Query::table("R"), Predicate::var("b"));
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        assert_eq!(
            e,
            UExpr::mul(
                UExpr::rel("R", Term::var(&t)),
                UExpr::pred("b", Term::pair(Term::Unit, Term::var(&t)))
            )
        );
    }

    #[test]
    fn fig1_rule_proves_from_denotations() {
        // SELECT * FROM (R UNION ALL S) WHERE b
        //   ≡ (SELECT * FROM R WHERE b) UNION ALL (SELECT * FROM S WHERE b)
        let sigma_b = Schema::node(Schema::Empty, int());
        let env = env_rs().with_pred("b", sigma_b);
        let mut gen = VarGen::new();
        let lhs = Query::where_(
            Query::union_all(Query::table("R"), Query::table("S")),
            Predicate::var("b"),
        );
        let rhs = Query::union_all(
            Query::where_(Query::table("R"), Predicate::var("b")),
            Query::where_(Query::table("S"), Predicate::var("b")),
        );
        let (t, el) = denote_closed_query(&lhs, &env, &mut gen).unwrap();
        let er = denote_query(
            &rhs,
            &env,
            &Schema::Empty,
            &Term::Unit,
            &Term::var(&t),
            &mut gen,
        )
        .unwrap();
        let proof = prove_eq(&el, &er, &mut gen).expect("Fig. 1 from real denotations");
        assert!(proof.steps() >= 1);
    }

    #[test]
    fn select_star_is_identity() {
        // SELECT Right.* FROM R ≡ R.
        let env = env_rs();
        let mut gen = VarGen::new();
        let q = Query::select(Proj::dot(Proj::Right, Proj::Star), Query::table("R"));
        let (t, e) = denote_closed_query(&q, &env, &mut gen).unwrap();
        let plain = UExpr::rel("R", Term::var(&t));
        let proof = prove_eq(&e, &plain, &mut gen).expect("projection identity");
        assert!(proof.steps() >= 1);
    }

    #[test]
    fn exists_denotes_to_squashed_sum() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let b = Predicate::exists(Query::table("R"));
        let e = denote_pred(&b, &env, &Schema::Empty, &Term::Unit, &mut gen).unwrap();
        let mut tr = Trace::new();
        let n = normalize(&e, &mut gen, &mut tr);
        assert_eq!(n.terms.len(), 1);
        assert!(matches!(n.terms[0].atoms[0], uninomial::Atom::Squash(_)));
    }

    #[test]
    fn castpred_composes_projections() {
        // CASTPRED Right b under context node(σS, σR): b sees σR.
        let env = env_rs().with_pred("b", int());
        let mut gen = VarGen::new();
        let ctx = Schema::node(int(), int());
        let g = gen.fresh(ctx.clone());
        let b = Predicate::cast(Proj::Right, Predicate::var("b"));
        let e = denote_pred(&b, &env, &ctx, &Term::var(&g), &mut gen).unwrap();
        assert_eq!(e, UExpr::pred("b", Term::snd(Term::var(&g))));
    }

    #[test]
    fn proj_var_denotes_to_uninterpreted_fn() {
        let env = env_rs().with_proj("k", int(), int());
        let mut gen = VarGen::new();
        let g = gen.fresh(int());
        let term = denote_proj(&Proj::var("k"), &env, &int(), &Term::var(&g), &mut gen).unwrap();
        assert_eq!(term, Term::Fn("k".into(), vec![Term::var(&g)]));
    }

    #[test]
    fn uninterp_predicate_tuples_arguments() {
        let env = env_rs().with_upred("lt", 2);
        let mut gen = VarGen::new();
        let g = gen.fresh(int());
        let b = Predicate::uninterp("lt", vec![Expr::p2e(Proj::Star), Expr::int(30)]);
        let e = denote_pred(&b, &env, &int(), &Term::var(&g), &mut gen).unwrap();
        assert_eq!(
            e,
            UExpr::pred("lt", Term::pair(Term::var(&g), Term::int(30)))
        );
    }

    #[test]
    fn aggregate_denotes_to_agg_term() {
        let env = env_rs();
        let mut gen = VarGen::new();
        let e = Expr::agg("SUM", Query::table("R"));
        let term = denote_expr(&e, &env, &Schema::Empty, &Term::Unit, &mut gen).unwrap();
        match term {
            Term::Agg(name, v, body) => {
                assert_eq!(name, "SUM");
                assert_eq!(*body, UExpr::rel("R", Term::var(&v)));
            }
            other => panic!("expected aggregate, got {other}"),
        }
    }
}
