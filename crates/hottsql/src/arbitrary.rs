//! Random query generation for property-based testing.
//!
//! Generates well-typed closed HoTTSQL queries over a set of declared
//! tables. Used by the cross-semantics property tests (the operational
//! evaluator of [`crate::eval`] must agree with the denotational
//! semantics of [`crate::denote`] evaluated symbolically, and with the
//! list-semantics baseline).

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::env::QueryEnv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::{BaseType, Schema};

/// A deterministic, seedable generator of well-typed queries.
#[derive(Debug)]
pub struct QueryGen {
    rng: StdRng,
    tables: Vec<(String, Schema)>,
    env: QueryEnv,
}

impl QueryGen {
    /// Creates a generator over the given tables.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty.
    pub fn new(seed: u64, tables: Vec<(String, Schema)>) -> QueryGen {
        assert!(!tables.is_empty(), "need at least one table");
        let mut env = QueryEnv::new();
        for (n, s) in &tables {
            env = env.with_table(n.clone(), s.clone());
        }
        QueryGen {
            rng: StdRng::seed_from_u64(seed),
            tables,
            env,
        }
    }

    /// The environment declaring the generator's tables.
    pub fn env(&self) -> &QueryEnv {
        &self.env
    }

    /// Generates a random closed query and its output schema.
    pub fn query(&mut self) -> (Query, Schema) {
        let depth = self.rng.gen_range(1..=3);
        self.query_at(depth)
    }

    fn base_table(&mut self) -> (Query, Schema) {
        let (n, s) = self.tables[self.rng.gen_range(0..self.tables.len())].clone();
        (Query::table(n), s)
    }

    fn query_at(&mut self, depth: usize) -> (Query, Schema) {
        if depth == 0 {
            return self.base_table();
        }
        match self.rng.gen_range(0..7) {
            0 => self.base_table(),
            1 => {
                // Product.
                let (a, sa) = self.query_at(depth - 1);
                let (b, sb) = self.query_at(depth - 1);
                (Query::product(a, b), Schema::node(sa, sb))
            }
            2 => {
                // Where with a random predicate.
                let (q, s) = self.query_at(depth - 1);
                let ctx = Schema::node(Schema::Empty, s.clone());
                let b = self.pred(&ctx, 2);
                (Query::where_(q, b), s)
            }
            3 => {
                // Union / except of structurally related operands.
                let (q, s) = self.query_at(depth - 1);
                let ctx = Schema::node(Schema::Empty, s.clone());
                let filtered = Query::where_(q.clone(), self.pred(&ctx, 1));
                if self.rng.gen_bool(0.5) {
                    (Query::union_all(q, filtered), s)
                } else {
                    (Query::except(q, filtered), s)
                }
            }
            4 => {
                // Distinct.
                let (q, s) = self.query_at(depth - 1);
                (Query::distinct(q), s)
            }
            5 => {
                // Select a random sub-projection.
                let (q, s) = self.query_at(depth - 1);
                let ctx = Schema::node(Schema::Empty, s);
                let (p, out) = self.proj(&ctx);
                (Query::select(p, q), out)
            }
            _ => {
                // Select a pair of sub-projections.
                let (q, s) = self.query_at(depth - 1);
                let ctx = Schema::node(Schema::Empty, s);
                let (p1, o1) = self.proj(&ctx);
                let (p2, o2) = self.proj(&ctx);
                (Query::select(Proj::pair(p1, p2), q), Schema::node(o1, o2))
            }
        }
    }

    /// A random path to a subtree of `from`, returned with its schema.
    fn proj(&mut self, from: &Schema) -> (Proj, Schema) {
        match from {
            Schema::Node(l, r) if self.rng.gen_bool(0.7) => {
                if self.rng.gen_bool(0.5) {
                    let (p, s) = self.proj(l);
                    (Proj::dot(Proj::Left, p), s)
                } else {
                    let (p, s) = self.proj(r);
                    (Proj::dot(Proj::Right, p), s)
                }
            }
            _ => (Proj::Star, from.clone()),
        }
    }

    /// All paths to leaves of `from`, with their types.
    fn leaf_paths(from: &Schema) -> Vec<(Proj, BaseType)> {
        match from {
            Schema::Empty => Vec::new(),
            Schema::Leaf(t) => vec![(Proj::Star, *t)],
            Schema::Node(l, r) => {
                let mut out: Vec<(Proj, BaseType)> = Self::leaf_paths(l)
                    .into_iter()
                    .map(|(p, t)| (Proj::dot(Proj::Left, p), t))
                    .collect();
                out.extend(
                    Self::leaf_paths(r)
                        .into_iter()
                        .map(|(p, t)| (Proj::dot(Proj::Right, p), t)),
                );
                out
            }
        }
    }

    /// A random predicate over context `ctx`.
    pub fn pred(&mut self, ctx: &Schema, depth: usize) -> Predicate {
        if depth > 0 {
            match self.rng.gen_range(0..6) {
                0 => return Predicate::and(self.pred(ctx, depth - 1), self.pred(ctx, depth - 1)),
                1 => return Predicate::or(self.pred(ctx, depth - 1), self.pred(ctx, depth - 1)),
                2 => return Predicate::not(self.pred(ctx, depth - 1)),
                _ => {}
            }
        }
        // Atom: an equality between two leaves of the same type, a
        // comparison against a constant, or a constant predicate.
        let leaves = Self::leaf_paths(ctx);
        if leaves.is_empty() || self.rng.gen_bool(0.15) {
            return if self.rng.gen_bool(0.5) {
                Predicate::True
            } else {
                Predicate::False
            };
        }
        let (p1, t1) = leaves[self.rng.gen_range(0..leaves.len())].clone();
        let same_type: Vec<&(Proj, BaseType)> = leaves.iter().filter(|(_, t)| *t == t1).collect();
        if self.rng.gen_bool(0.5) && same_type.len() > 1 {
            let (p2, _) = same_type[self.rng.gen_range(0..same_type.len())].clone();
            Predicate::eq(Expr::p2e(p1), Expr::p2e(p2))
        } else {
            let c = match t1 {
                BaseType::Int => Expr::int(self.rng.gen_range(-2..=2)),
                BaseType::Bool => Expr::value(self.rng.gen_bool(0.5)),
                BaseType::Str => Expr::value(["", "a", "b"][self.rng.gen_range(0..3)]),
            };
            Predicate::eq(Expr::p2e(p1), c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::infer_query;

    fn tables() -> Vec<(String, Schema)> {
        vec![
            ("R".into(), Schema::flat([BaseType::Int, BaseType::Int])),
            (
                "S".into(),
                Schema::node(Schema::leaf(BaseType::Bool), Schema::leaf(BaseType::Int)),
            ),
        ]
    }

    #[test]
    fn generated_queries_are_well_typed() {
        for seed in 0..60 {
            let mut g = QueryGen::new(seed, tables());
            let (q, claimed) = g.query();
            let inferred = infer_query(&q, g.env(), &Schema::Empty)
                .unwrap_or_else(|e| panic!("seed {seed}: {q} ill-typed: {e}"));
            assert_eq!(inferred, claimed, "seed {seed}: {q}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (q1, _) = QueryGen::new(9, tables()).query();
        let (q2, _) = QueryGen::new(9, tables()).query();
        assert_eq!(q1, q2);
    }

    #[test]
    fn generated_predicates_check() {
        let mut g = QueryGen::new(4, tables());
        let ctx = Schema::node(Schema::Empty, Schema::flat([BaseType::Int, BaseType::Bool]));
        for _ in 0..40 {
            let b = g.pred(&ctx, 2);
            assert!(
                crate::ty::check_pred(&b, g.env(), &ctx).is_ok(),
                "{b} ill-typed"
            );
        }
    }
}
