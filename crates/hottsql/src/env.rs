//! Declaration environments: schemas for tables and meta-variables.
//!
//! A rewrite rule quantifies over its meta-variables (Sec. 3.3). To type
//! and denote the rule we need each meta-variable's *signature*:
//!
//! - a relation meta-variable has a schema;
//! - a predicate meta-variable has the context schema it reads;
//! - an expression meta-variable has a context schema and a result type;
//! - a projection meta-variable (a generic "attribute") has an input
//!   schema and an output schema.
//!
//! Generic rules are Rust functions from schemas to [`QueryEnv`]-plus-
//! queries; proving instantiates schema parameters with an opaque leaf
//! type, testing instantiates them with random concrete schemas.

use relalg::{BaseType, Schema};
use std::collections::BTreeMap;

/// Signature environment for a query or rewrite rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryEnv {
    tables: BTreeMap<String, Schema>,
    preds: BTreeMap<String, Schema>,
    exprs: BTreeMap<String, (Schema, BaseType)>,
    projs: BTreeMap<String, (Schema, Schema)>,
    fns: BTreeMap<String, BaseType>,
    upreds: BTreeMap<String, usize>,
}

impl QueryEnv {
    /// An empty environment.
    pub fn new() -> QueryEnv {
        QueryEnv::default()
    }

    /// Declares a table (or relation meta-variable) with its schema.
    pub fn with_table(mut self, name: impl Into<String>, schema: Schema) -> QueryEnv {
        self.tables.insert(name.into(), schema);
        self
    }

    /// Declares a predicate meta-variable reading the given context.
    pub fn with_pred(mut self, name: impl Into<String>, context: Schema) -> QueryEnv {
        self.preds.insert(name.into(), context);
        self
    }

    /// Declares an expression meta-variable.
    pub fn with_expr(
        mut self,
        name: impl Into<String>,
        context: Schema,
        result: BaseType,
    ) -> QueryEnv {
        self.exprs.insert(name.into(), (context, result));
        self
    }

    /// Declares a projection meta-variable (a generic attribute) from
    /// `input` to `output`.
    pub fn with_proj(mut self, name: impl Into<String>, input: Schema, output: Schema) -> QueryEnv {
        self.projs.insert(name.into(), (input, output));
        self
    }

    /// Declares an uninterpreted scalar function's result type.
    pub fn with_fn(mut self, name: impl Into<String>, result: BaseType) -> QueryEnv {
        self.fns.insert(name.into(), result);
        self
    }

    /// Declares an uninterpreted predicate of the given arity.
    pub fn with_upred(mut self, name: impl Into<String>, arity: usize) -> QueryEnv {
        self.upreds.insert(name.into(), arity);
        self
    }

    /// Schema of a table.
    pub fn table(&self, name: &str) -> Option<&Schema> {
        self.tables.get(name)
    }

    /// Context schema of a predicate meta-variable.
    pub fn pred(&self, name: &str) -> Option<&Schema> {
        self.preds.get(name)
    }

    /// Signature of an expression meta-variable.
    pub fn expr(&self, name: &str) -> Option<&(Schema, BaseType)> {
        self.exprs.get(name)
    }

    /// Signature of a projection meta-variable.
    pub fn proj(&self, name: &str) -> Option<&(Schema, Schema)> {
        self.projs.get(name)
    }

    /// Result type of an uninterpreted function (`Int` by default for
    /// undeclared names, mirroring the paper's untyped uninterpreted
    /// functions).
    pub fn fn_result(&self, name: &str) -> BaseType {
        self.fns.get(name).copied().unwrap_or(BaseType::Int)
    }

    /// Arity of an uninterpreted predicate, if declared.
    pub fn upred(&self, name: &str) -> Option<usize> {
        self.upreds.get(name).copied()
    }

    /// Iterates over declared tables.
    pub fn tables(&self) -> impl Iterator<Item = (&String, &Schema)> {
        self.tables.iter()
    }

    /// Iterates over declared predicate meta-variables.
    pub fn preds(&self) -> impl Iterator<Item = (&String, &Schema)> {
        self.preds.iter()
    }

    /// Iterates over declared projection meta-variables.
    pub fn projs(&self) -> impl Iterator<Item = (&String, &(Schema, Schema))> {
        self.projs.iter()
    }

    /// Iterates over declared expression meta-variables.
    pub fn exprs(&self) -> impl Iterator<Item = (&String, &(Schema, BaseType))> {
        self.exprs.iter()
    }

    /// Iterates over declared uninterpreted predicates.
    pub fn upreds(&self) -> impl Iterator<Item = (&String, usize)> {
        self.upreds.iter().map(|(n, a)| (n, *a))
    }

    /// Iterates over declared uninterpreted functions.
    pub fn fns(&self) -> impl Iterator<Item = (&String, BaseType)> {
        self.fns.iter().map(|(n, t)| (n, *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let s = Schema::flat([BaseType::Int, BaseType::Bool]);
        let env = QueryEnv::new()
            .with_table("R", s.clone())
            .with_pred("b", s.clone())
            .with_expr("e", s.clone(), BaseType::Int)
            .with_proj("k", s.clone(), Schema::leaf(BaseType::Int))
            .with_fn("add", BaseType::Int)
            .with_upred("lt", 2);
        assert_eq!(env.table("R"), Some(&s));
        assert_eq!(env.pred("b"), Some(&s));
        assert_eq!(env.expr("e"), Some(&(s.clone(), BaseType::Int)));
        assert_eq!(
            env.proj("k"),
            Some(&(s.clone(), Schema::leaf(BaseType::Int)))
        );
        assert_eq!(env.fn_result("add"), BaseType::Int);
        assert_eq!(env.fn_result("undeclared"), BaseType::Int);
        assert_eq!(env.upred("lt"), Some(2));
        assert_eq!(env.table("S"), None);
    }

    #[test]
    fn iteration_orders_are_deterministic() {
        let env = QueryEnv::new()
            .with_table("B", Schema::Empty)
            .with_table("A", Schema::Empty);
        let names: Vec<&String> = env.tables().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
