//! The HoTTSQL language (Sec. 3 of the paper).
//!
//! HoTTSQL is a SQL-like language for expressing query rewrite rules:
//! queries over tree-shaped schemas with explicit path projections
//! (`Left`, `Right`, `*`), meta-variables for relations, predicates,
//! expressions, and projections, and explicit context casts (`CASTPRED`,
//! `CASTEXPR`). This crate implements:
//!
//! - [`ast`] — the abstract syntax of Fig. 5;
//! - [`env`] — declaration environments for tables and meta-variables;
//! - [`ty`] — the context-schema type system (`Γ ⊢ q : σ`, Fig. 7's
//!   typing side);
//! - [`parse`] — a recursive-descent parser for the paper's concrete
//!   syntax;
//! - [`denote`] — the denotational semantics of Fig. 7, producing
//!   [`uninomial::UExpr`]s;
//! - [`eval`] — direct evaluation of queries against concrete
//!   [`relalg::Relation`] instances (the executable reading of Fig. 7,
//!   used as the differential-testing oracle);
//! - [`desugar`] — derived constructs: `GROUP BY` (Sec. 4.2), `SEMIJOIN`
//!   (Sec. 5.1.3), and `LEFT OUTER JOIN` (Sec. 7).
//!
//! # Example
//!
//! ```
//! use hottsql::parse::parse_query;
//! use hottsql::env::QueryEnv;
//! use relalg::{BaseType, Schema};
//!
//! let env = QueryEnv::new()
//!     .with_table("R", Schema::flat([BaseType::Int, BaseType::Int]));
//! let q = parse_query("DISTINCT SELECT Right.Left FROM R").unwrap();
//! let sigma = hottsql::ty::infer_query(&q, &env, &Schema::Empty).unwrap();
//! assert_eq!(sigma, Schema::leaf(BaseType::Int));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbitrary;
pub mod ast;
pub mod denote;
pub mod desugar;
pub mod env;
pub mod error;
pub mod eval;
pub mod parse;
pub mod readback;
pub mod ty;

pub use ast::{Expr, Predicate, Proj, Query};
pub use env::QueryEnv;
pub use error::{HottsqlError, Result};
