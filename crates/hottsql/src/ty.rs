//! The context-schema type system (`Γ ⊢ q : σ`).
//!
//! Typing follows the judgments implicit in Fig. 7: a query is typed
//! under a context schema `Γ` (the concatenation of all tuple variables
//! in surrounding scopes, Sec. 4) and produces an output schema `σ`;
//! predicates are checked against a context; expressions produce a base
//! type; projections map one schema to another.

use crate::ast::{Expr, Predicate, Proj, Query};
use crate::env::QueryEnv;
use crate::error::{HottsqlError, Result};
use relalg::ops::Aggregate;
use relalg::{BaseType, Schema};

/// Infers the output schema of `q` under context `ctx`: `Γ ⊢ q : σ`.
///
/// # Errors
///
/// Returns a [`HottsqlError`] for unbound names or shape mismatches.
pub fn infer_query(q: &Query, env: &QueryEnv, ctx: &Schema) -> Result<Schema> {
    match q {
        Query::Table(name) => env
            .table(name)
            .cloned()
            .ok_or_else(|| HottsqlError::Unbound(name.clone())),
        Query::Select(p, inner) => {
            let sigma_inner = infer_query(inner, env, ctx)?;
            let select_ctx = Schema::node(ctx.clone(), sigma_inner);
            infer_proj(p, env, &select_ctx)
        }
        Query::Product(a, b) => Ok(Schema::node(
            infer_query(a, env, ctx)?,
            infer_query(b, env, ctx)?,
        )),
        Query::Where(inner, b) => {
            let sigma = infer_query(inner, env, ctx)?;
            check_pred(b, env, &Schema::node(ctx.clone(), sigma.clone()))?;
            Ok(sigma)
        }
        Query::UnionAll(a, b) | Query::Except(a, b) => {
            let sa = infer_query(a, env, ctx)?;
            let sb = infer_query(b, env, ctx)?;
            if sa != sb {
                return Err(HottsqlError::ty(
                    format!("operands have schemas {sa} vs {sb}"),
                    ctx,
                ));
            }
            Ok(sa)
        }
        Query::Distinct(inner) => infer_query(inner, env, ctx),
    }
}

/// Checks a predicate under context `ctx`: `Γ ⊢ b`.
///
/// # Errors
///
/// Returns a [`HottsqlError`] for unbound names, context mismatches on
/// predicate meta-variables, or ill-typed equalities.
pub fn check_pred(b: &Predicate, env: &QueryEnv, ctx: &Schema) -> Result<()> {
    match b {
        Predicate::Eq(a, e) => {
            let ta = infer_expr(a, env, ctx)?;
            let te = infer_expr(e, env, ctx)?;
            if ta != te {
                return Err(HottsqlError::ty(
                    format!("equality between {ta} and {te}"),
                    ctx,
                ));
            }
            Ok(())
        }
        Predicate::Not(inner) => check_pred(inner, env, ctx),
        Predicate::And(x, y) | Predicate::Or(x, y) => {
            check_pred(x, env, ctx)?;
            check_pred(y, env, ctx)
        }
        Predicate::True | Predicate::False => Ok(()),
        Predicate::CastPred(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            check_pred(inner, env, &target)
        }
        Predicate::Exists(q) => {
            infer_query(q, env, ctx)?;
            Ok(())
        }
        Predicate::Var(name) => {
            let declared = env
                .pred(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            if declared != ctx {
                return Err(HottsqlError::ty(
                    format!("predicate {name} declared over {declared}"),
                    ctx,
                ));
            }
            Ok(())
        }
        Predicate::Uninterp(name, args) => {
            if let Some(arity) = env.upred(name) {
                if arity != args.len() {
                    return Err(HottsqlError::ty(
                        format!("predicate {name} expects {arity} arguments"),
                        ctx,
                    ));
                }
            }
            for a in args {
                infer_expr(a, env, ctx)?;
            }
            Ok(())
        }
    }
}

/// Infers the base type of an expression under context `ctx`:
/// `Γ ⊢ e : τ`.
///
/// # Errors
///
/// Returns a [`HottsqlError`] for unbound names or non-leaf projections
/// used as expressions.
pub fn infer_expr(e: &Expr, env: &QueryEnv, ctx: &Schema) -> Result<BaseType> {
    match e {
        Expr::P2E(p) => match infer_proj(p, env, ctx)? {
            Schema::Leaf(t) => Ok(t),
            other => Err(HottsqlError::ty(
                format!("projection used as expression has schema {other}"),
                ctx,
            )),
        },
        Expr::Fn(name, args) => {
            for a in args {
                infer_expr(a, env, ctx)?;
            }
            Ok(env.fn_result(name))
        }
        Expr::Agg(name, q) => {
            let agg = Aggregate::parse(name)
                .ok_or_else(|| HottsqlError::Unbound(format!("aggregate {name}")))?;
            let sigma = infer_query(q, env, ctx)?;
            match sigma {
                Schema::Leaf(t) => match agg {
                    Aggregate::Count => Ok(BaseType::Int),
                    Aggregate::Sum | Aggregate::Avg => {
                        if t == BaseType::Int {
                            Ok(BaseType::Int)
                        } else {
                            Err(HottsqlError::ty(
                                format!("{name} over non-integer column"),
                                ctx,
                            ))
                        }
                    }
                    Aggregate::Max | Aggregate::Min => Ok(t),
                },
                other => Err(HottsqlError::ty(
                    format!("aggregate over non-scalar query of schema {other}"),
                    ctx,
                )),
            }
        }
        Expr::CastExpr(p, inner) => {
            let target = infer_proj(p, env, ctx)?;
            infer_expr(inner, env, &target)
        }
        Expr::Const(v) => v
            .base_type()
            .ok_or_else(|| HottsqlError::ty("NULL constant needs a typed context", ctx)),
        Expr::Var(name) => {
            let (declared, result) = env
                .expr(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            if declared != ctx {
                return Err(HottsqlError::ty(
                    format!("expression {name} declared over {declared}"),
                    ctx,
                ));
            }
            Ok(*result)
        }
    }
}

/// Infers the target schema of a projection: `p : Γ ⇒ Γ′`.
///
/// # Errors
///
/// Returns a [`HottsqlError`] when a path selector does not match the
/// shape of `from` or a meta-variable's declared input differs.
pub fn infer_proj(p: &Proj, env: &QueryEnv, from: &Schema) -> Result<Schema> {
    match p {
        Proj::Star => Ok(from.clone()),
        Proj::Left => match from {
            Schema::Node(l, _) => Ok((**l).clone()),
            other => Err(HottsqlError::ty("Left on a non-node schema", other)),
        },
        Proj::Right => match from {
            Schema::Node(_, r) => Ok((**r).clone()),
            other => Err(HottsqlError::ty("Right on a non-node schema", other)),
        },
        Proj::Empty => Ok(Schema::Empty),
        Proj::Dot(p1, p2) => {
            let mid = infer_proj(p1, env, from)?;
            infer_proj(p2, env, &mid)
        }
        Proj::Pair(p1, p2) => Ok(Schema::node(
            infer_proj(p1, env, from)?,
            infer_proj(p2, env, from)?,
        )),
        Proj::E2P(e) => Ok(Schema::Leaf(infer_expr(e, env, from)?)),
        Proj::Var(name) => {
            let (input, output) = env
                .proj(name)
                .ok_or_else(|| HottsqlError::Unbound(name.clone()))?;
            if input != from {
                return Err(HottsqlError::ty(
                    format!("projection {name} declared on input {input}"),
                    from,
                ));
            }
            Ok(output.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> Schema {
        Schema::leaf(BaseType::Int)
    }

    fn r_env() -> QueryEnv {
        QueryEnv::new()
            .with_table("R", Schema::node(int(), int()))
            .with_table("S", Schema::leaf(BaseType::Bool))
    }

    #[test]
    fn table_lookup() {
        let env = r_env();
        assert_eq!(
            infer_query(&Query::table("R"), &env, &Schema::Empty).unwrap(),
            Schema::node(int(), int())
        );
        assert!(matches!(
            infer_query(&Query::table("Z"), &env, &Schema::Empty),
            Err(HottsqlError::Unbound(_))
        ));
    }

    #[test]
    fn product_builds_node() {
        let env = r_env();
        let q = Query::product(Query::table("R"), Query::table("S"));
        assert_eq!(
            infer_query(&q, &env, &Schema::Empty).unwrap(),
            Schema::node(Schema::node(int(), int()), Schema::leaf(BaseType::Bool))
        );
    }

    #[test]
    fn select_context_includes_outer() {
        // SELECT Right.Left FROM R under empty context: the projection's
        // input is node(empty, σR).
        let env = r_env();
        let q = Query::select(Proj::dot(Proj::Right, Proj::Left), Query::table("R"));
        assert_eq!(infer_query(&q, &env, &Schema::Empty).unwrap(), int());
    }

    #[test]
    fn select_left_reaches_outer_context() {
        // Under a nonempty context, SELECT Left.* returns the context —
        // legal (if unusual) per Fig. 7.
        let env = r_env();
        let ctx = Schema::leaf(BaseType::Str);
        let q = Query::select(Proj::Left, Query::table("R"));
        assert_eq!(infer_query(&q, &env, &ctx).unwrap(), ctx);
    }

    #[test]
    fn union_requires_equal_schemas() {
        let env = r_env();
        let ok = Query::union_all(Query::table("R"), Query::table("R"));
        assert!(infer_query(&ok, &env, &Schema::Empty).is_ok());
        let bad = Query::union_all(Query::table("R"), Query::table("S"));
        assert!(infer_query(&bad, &env, &Schema::Empty).is_err());
    }

    #[test]
    fn where_types_predicate_under_extended_context() {
        let env = r_env();
        // R WHERE Right.Left = Right.Right: predicate context is
        // node(empty, σR).
        let b = Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
            Expr::p2e(Proj::path([Proj::Right, Proj::Right])),
        );
        let q = Query::where_(Query::table("R"), b);
        assert!(infer_query(&q, &env, &Schema::Empty).is_ok());
        // Comparing int with bool fails.
        let env2 = r_env().with_table("T", Schema::node(int(), Schema::leaf(BaseType::Bool)));
        let b2 = Predicate::eq(
            Expr::p2e(Proj::path([Proj::Right, Proj::Left])),
            Expr::p2e(Proj::path([Proj::Right, Proj::Right])),
        );
        let q2 = Query::where_(Query::table("T"), b2);
        assert!(infer_query(&q2, &env2, &Schema::Empty).is_err());
    }

    #[test]
    fn pred_var_context_must_match() {
        let sigma = Schema::node(Schema::Empty, Schema::node(int(), int()));
        let env = r_env().with_pred("b", sigma);
        let q = Query::where_(Query::table("R"), Predicate::var("b"));
        assert!(infer_query(&q, &env, &Schema::Empty).is_ok());
        // Under a different outer context the declared context no longer
        // matches.
        assert!(infer_query(&q, &env, &int()).is_err());
    }

    #[test]
    fn castpred_retargets_context() {
        // CASTPRED Right b where b is declared over σR.
        let sigma_r = Schema::node(int(), int());
        let env = r_env().with_pred("b", sigma_r);
        let b = Predicate::cast(Proj::Right, Predicate::var("b"));
        let ctx = Schema::node(Schema::Empty, Schema::node(int(), int()));
        assert!(check_pred(&b, &env, &ctx).is_ok());
    }

    #[test]
    fn exists_checks_subquery() {
        let env = r_env();
        let b = Predicate::exists(Query::table("R"));
        assert!(check_pred(&b, &env, &Schema::Empty).is_ok());
        let bad = Predicate::exists(Query::table("Z"));
        assert!(check_pred(&bad, &env, &Schema::Empty).is_err());
    }

    #[test]
    fn aggregates_type() {
        let env = r_env().with_table("C", int());
        let e = Expr::agg("SUM", Query::table("C"));
        assert_eq!(infer_expr(&e, &env, &Schema::Empty).unwrap(), BaseType::Int);
        let e = Expr::agg("COUNT", Query::table("C"));
        assert_eq!(infer_expr(&e, &env, &Schema::Empty).unwrap(), BaseType::Int);
        // SUM over a two-column query is ill-typed.
        let e = Expr::agg("SUM", Query::table("R"));
        assert!(infer_expr(&e, &env, &Schema::Empty).is_err());
        // Unknown aggregate.
        let e = Expr::agg("MEDIAN", Query::table("C"));
        assert!(infer_expr(&e, &env, &Schema::Empty).is_err());
    }

    #[test]
    fn proj_var_signature_checked() {
        let sigma_r = Schema::node(int(), int());
        let env = r_env().with_proj("k", sigma_r.clone(), int());
        assert_eq!(infer_proj(&Proj::var("k"), &env, &sigma_r).unwrap(), int());
        assert!(infer_proj(&Proj::var("k"), &env, &int()).is_err());
        assert!(infer_proj(&Proj::var("z"), &env, &sigma_r).is_err());
    }

    #[test]
    fn e2p_wraps_expression_type() {
        let env = r_env();
        let p = Proj::e2p(Expr::int(3));
        assert_eq!(infer_proj(&p, &env, &Schema::Empty).unwrap(), int());
    }

    #[test]
    fn null_constant_is_untypable() {
        let env = r_env();
        let e = Expr::Const(relalg::Value::Null);
        assert!(infer_expr(&e, &env, &Schema::Empty).is_err());
    }

    #[test]
    fn star_and_empty() {
        let env = r_env();
        let s = Schema::node(int(), int());
        assert_eq!(infer_proj(&Proj::Star, &env, &s).unwrap(), s);
        assert_eq!(infer_proj(&Proj::Empty, &env, &s).unwrap(), Schema::Empty);
    }
}
