//! Mined rewrite rules: certified rule schemas synthesized by the
//! `mine` crate's discovery loop, compiled into the saturation solver's
//! rewrite table alongside the built-in lemma rewrites.
//!
//! A [`MinedRule`] is a pair of *closed* pattern expressions over
//! metavariable **holes** — nullary relation atoms whose name starts
//! with `?` (e.g. `Rel("?h0", Unit)`). Holes stand for arbitrary
//! (sub)expressions; the certification trace attached to the rule was
//! produced by the trusted prover stack on the schema itself, with the
//! hole atoms treated as opaque relations, so it is parametric in the
//! holes: every instance union carries the same replayable lemma steps.
//!
//! Application is extraction-based, like the binder rewrites in
//! [`crate::rewrite`]: each e-class is read back as a named tree, the
//! left pattern is matched at the root (every subterm is its own class,
//! so root matching per class covers all positions), the right side is
//! built by hole substitution with freshly renamed binders, and the
//! result is re-seeded under the original binder context. Matching is
//! modulo the readback's graph-specific presentation: `+`/`×` spines
//! compare as operand multisets (readback nests AC nodes by class id),
//! `=` compares under both orientations (children are class-id-sorted),
//! and `Σ` binders compare up to α. The union's
//! justification carries the rule's certification steps as substeps, so
//! explanations extracted through a mined union stay Lemma-only and
//! replayable.
//!
//! **Capture discipline**: a hole may bind a subexpression mentioning
//! variables free in the whole matched class (they resolve through the
//! reseed scope), but never a variable bound by a `Σ` *inside* the
//! matched region — that substitution would not be an instance of the
//! certified schema. The matcher enforces this per binding.

use crate::graph::EGraph;
use crate::lang::NameEnv;
use crate::rewrite::{reseed, RewriteCtx};
use crate::unionfind::Id;
use std::collections::{HashMap, HashSet};
use uninomial::lemmas::Lemma;
use uninomial::syntax::{Term, UExpr};

/// The profile-label prefix of every mined rule. Built-in rewrite
/// names never start with it (guarded by a test in `solve`), so mined
/// attribution rows can never collide with catalog rule rows in
/// `--profile` tables or `scale diff` rule_attribution series.
pub const MINED_LABEL_PREFIX: &str = "mined:";

/// Whether a relation name denotes a metavariable hole.
pub fn is_hole(name: &str) -> bool {
    name.starts_with('?')
}

/// A certified mined rewrite rule: closed patterns over holes, plus the
/// replayable certification trace of the schema equality.
#[derive(Clone, Debug, PartialEq)]
pub struct MinedRule {
    /// Stable rule name (e.g. `m000`), unique within a mined catalog.
    /// Attribution rows use [`MinedRule::label`], which prefixes it.
    pub name: String,
    /// Left pattern (match side). Closed except for hole atoms.
    pub lhs: UExpr,
    /// Right pattern (construct side); its holes ⊆ the left's.
    pub rhs: UExpr,
    /// Top-level justification lemma of instance unions (the first
    /// lemma of the certification trace).
    pub lemma: Lemma,
    /// Human-readable union note.
    pub note: String,
    /// The schema's certification trace, attached to every instance
    /// union as substeps (mirroring the oracle-rewrite idiom).
    pub steps: Vec<(Lemma, String)>,
}

impl MinedRule {
    /// The `mined:`-prefixed attribution label of this rule.
    pub fn label(&self) -> String {
        format!("{MINED_LABEL_PREFIX}{}", self.name)
    }
}

/// Match state: hole bindings, pattern→target binder correspondence,
/// and the target binders currently in scope (the capture check).
/// Cloneable so the AC backtracking search can snapshot and roll back.
#[derive(Default, Clone)]
struct MatchState {
    binds: HashMap<String, UExpr>,
    varmap: HashMap<u32, u32>,
    bound_target: Vec<u32>,
}

/// Flattens a `+` or `×` spine into its operand list. Extraction reads
/// n-ary class nodes back as binary trees nested in *class-id* order,
/// and class ids are an artifact of the particular e-graph — so the
/// matcher must treat the whole spine as a multiset, not a tree.
fn flatten<'a>(e: &'a UExpr, is_add: bool, out: &mut Vec<&'a UExpr>) {
    match e {
        UExpr::Add(a, b) if is_add => {
            flatten(a, true, out);
            flatten(b, true, out);
        }
        UExpr::Mul(a, b) if !is_add => {
            flatten(a, false, out);
            flatten(b, false, out);
        }
        _ => out.push(e),
    }
}

/// AC spines above this many operands fall back to ordered matching:
/// the backtracking search is factorial in the spine length, and mined
/// schemas never come close to this fan-in.
const AC_FANIN_CAP: usize = 8;

/// Matches a pattern operand multiset against a target operand multiset
/// (one `+`/`×` spine), backtracking over target positions. Concrete
/// patterns are tried before holes so bindings are forced, not guessed.
fn match_multiset(pats: &[&UExpr], tgts: &[&UExpr], st: &mut MatchState) -> bool {
    if pats.len() != tgts.len() {
        // Holes bind exactly one operand slot: a mined schema abstracts
        // subterms, never sub-multisets of a spine.
        return false;
    }
    let mut order: Vec<&UExpr> = pats.to_vec();
    order.sort_by_key(|p| matches!(p, UExpr::Rel(h, Term::Unit) if is_hole(h)));
    fn go(pats: &[&UExpr], tgts: &mut Vec<&UExpr>, st: &mut MatchState) -> bool {
        let Some((first, rest)) = pats.split_first() else {
            return tgts.is_empty();
        };
        for i in 0..tgts.len() {
            let snapshot = st.clone();
            if match_expr(first, tgts[i], st) {
                let picked = tgts.remove(i);
                if go(rest, tgts, st) {
                    return true;
                }
                tgts.insert(i, picked);
            }
            *st = snapshot;
        }
        false
    }
    let mut remaining = tgts.to_vec();
    go(&order, &mut remaining, st)
}

fn match_expr(pat: &UExpr, tgt: &UExpr, st: &mut MatchState) -> bool {
    if let UExpr::Rel(h, Term::Unit) = pat {
        if is_hole(h) {
            // Capture check: the binding must not mention a variable
            // bound inside the matched region.
            if tgt
                .free_vars()
                .iter()
                .any(|v| st.bound_target.contains(&v.id))
            {
                return false;
            }
            return match st.binds.get(h) {
                // Nonlinear holes: later occurrences must bind the
                // structurally identical subexpression.
                Some(prev) => prev == tgt,
                None => {
                    st.binds.insert(h.clone(), tgt.clone());
                    true
                }
            };
        }
    }
    match (pat, tgt) {
        (UExpr::Zero, UExpr::Zero) | (UExpr::One, UExpr::One) => true,
        (UExpr::Add(_, _), UExpr::Add(_, _)) | (UExpr::Mul(_, _), UExpr::Mul(_, _)) => {
            // `+`/`×` match modulo associativity and commutativity: both
            // spines flatten to operand multisets. (Readback nests AC
            // nodes by class id, so ordered matching would make a rule
            // fire or not depending on which e-graph it runs in.)
            let is_add = matches!(pat, UExpr::Add(_, _));
            let (mut ps, mut ts) = (Vec::new(), Vec::new());
            flatten(pat, is_add, &mut ps);
            flatten(tgt, is_add, &mut ts);
            if ps.len() != ts.len() {
                false
            } else if ps.len() > AC_FANIN_CAP {
                ps.iter().zip(&ts).all(|(p, t)| match_expr(p, t, st))
            } else {
                match_multiset(&ps, &ts, st)
            }
        }
        (UExpr::Not(a), UExpr::Not(b)) | (UExpr::Squash(a), UExpr::Squash(b)) => {
            match_expr(a, b, st)
        }
        (UExpr::Sum(pv, pb), UExpr::Sum(tv, tb)) => {
            if pv.schema != tv.schema {
                return false;
            }
            let shadowed = st.varmap.insert(pv.id, tv.id);
            st.bound_target.push(tv.id);
            let ok = match_expr(pb, tb, st);
            st.bound_target.pop();
            match shadowed {
                Some(prev) => {
                    st.varmap.insert(pv.id, prev);
                }
                None => {
                    st.varmap.remove(&pv.id);
                }
            }
            ok
        }
        (UExpr::Eq(a, b), UExpr::Eq(c, d)) => {
            // `=` children are kept class-id-sorted (Lemma `EqSym`), so
            // the readback orientation is graph-specific: try both.
            let snapshot = st.clone();
            if match_term(a, c, st) && match_term(b, d, st) {
                return true;
            }
            *st = snapshot;
            match_term(a, d, st) && match_term(b, c, st)
        }
        (UExpr::Rel(n, a), UExpr::Rel(m, b)) | (UExpr::Pred(n, a), UExpr::Pred(m, b)) => {
            n == m && match_term(a, b, st)
        }
        _ => false,
    }
}

fn match_term(pat: &Term, tgt: &Term, st: &mut MatchState) -> bool {
    match (pat, tgt) {
        (Term::Var(pv), Term::Var(tv)) => {
            pv.schema == tv.schema && st.varmap.get(&pv.id) == Some(&tv.id)
        }
        (Term::Unit, Term::Unit) => true,
        (Term::Const(a), Term::Const(b)) => a == b,
        (Term::Pair(a, b), Term::Pair(c, d)) => match_term(a, c, st) && match_term(b, d, st),
        (Term::Fst(a), Term::Fst(b)) | (Term::Snd(a), Term::Snd(b)) => match_term(a, b, st),
        (Term::Fn(f, xs), Term::Fn(g, ys)) => {
            f == g && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| match_term(x, y, st))
        }
        (Term::Agg(n, pv, pb), Term::Agg(m, tv, tb)) => {
            if n != m || pv.schema != tv.schema {
                return false;
            }
            let shadowed = st.varmap.insert(pv.id, tv.id);
            st.bound_target.push(tv.id);
            let ok = match_expr(pb, tb, st);
            st.bound_target.pop();
            match shadowed {
                Some(prev) => {
                    st.varmap.insert(pv.id, prev);
                }
                None => {
                    st.varmap.remove(&pv.id);
                }
            }
            ok
        }
        _ => false,
    }
}

/// Replaces hole atoms by their bindings (identity on everything else).
fn instantiate(e: &UExpr, binds: &HashMap<String, UExpr>) -> UExpr {
    match e {
        UExpr::Rel(h, Term::Unit) if is_hole(h) => match binds.get(h) {
            Some(b) => b.clone(),
            None => e.clone(),
        },
        UExpr::Zero => UExpr::Zero,
        UExpr::One => UExpr::One,
        UExpr::Add(a, b) => UExpr::add(instantiate(a, binds), instantiate(b, binds)),
        UExpr::Mul(a, b) => UExpr::mul(instantiate(a, binds), instantiate(b, binds)),
        UExpr::Not(x) => UExpr::not(instantiate(x, binds)),
        UExpr::Squash(x) => UExpr::squash(instantiate(x, binds)),
        UExpr::Sum(v, b) => UExpr::sum(v.clone(), instantiate(b, binds)),
        UExpr::Eq(_, _) | UExpr::Rel(_, _) | UExpr::Pred(_, _) => e.clone(),
    }
}

/// Instantiates a mined schema side with the given hole bindings —
/// exactly the substitution [`apply_rule`] performs, exposed so the
/// miner's soundness property tests exercise the same code path.
pub fn instantiate_schema(side: &UExpr, binds: &HashMap<String, UExpr>) -> UExpr {
    instantiate(side, binds)
}

/// Matches a mined rule's left pattern against an expression at the
/// root, returning the hole bindings on success. Public for the miner's
/// property tests; the solver drives [`apply_rule`].
pub fn match_rule(lhs: &UExpr, target: &UExpr) -> Option<HashMap<String, UExpr>> {
    let mut st = MatchState::default();
    match_expr(lhs, target, &mut st).then_some(st.binds)
}

/// Renames all variables of an expression jointly, in first-occurrence
/// order, to a canonical sequence — two expressions are α-equivalent
/// (including consistent free-variable renaming) iff their canonical
/// forms are equal, *provided* distinct binders carry distinct ids (as
/// extraction output always does; renaming is id-keyed, so an
/// expression reusing one id across sibling binders conflates them —
/// refresh binders first in that case). The miner uses this to dedup
/// schemas and to orient discovered pairs.
pub fn alpha_canonical(e: &UExpr) -> UExpr {
    let mut map = HashMap::new();
    crate::rewrite::rename_uexpr(e, &mut map)
}

/// One match-and-apply pass of a mined rule over the snapshot: per
/// class (deduped through `attempted`), extract, match at the root,
/// build the instantiated right side with freshly renamed binders, and
/// union with the rule's certification steps attached. Returns the
/// number of unions performed.
pub fn apply_rule(
    eg: &mut EGraph,
    ctx: &mut RewriteCtx<'_>,
    idx: usize,
    rule: &MinedRule,
    attempted: &mut HashSet<(usize, Id)>,
) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        // Term-sort classes can never match a UExpr pattern (and the
        // UExpr extractor refuses to read them back).
        if !node.is_uexpr_sort() {
            continue;
        }
        if !attempted.insert((idx, *id)) {
            continue;
        }
        let mut env = NameEnv::new(ctx.gen);
        let Some(expr) = eg.extract_uexpr(ctx.best, *id, &mut env) else {
            continue;
        };
        let Some(binds) = match_rule(&rule.lhs, &expr) else {
            continue;
        };
        let scope = env.outer_scope();
        drop(env);
        // Fresh binders BEFORE substitution: a schema binder id could
        // otherwise capture a free variable inside a hole binding.
        let fresh_rhs = rule.rhs.refresh_binders(ctx.gen);
        let out = instantiate(&fresh_rhs, &binds);
        let rhs = reseed(eg, &out, scope);
        ctx.matches += 1;
        if eg.union_detailed(*id, rhs, rule.lemma, rule.note.clone(), rule.steps.clone()) {
            unions += 1;
        }
    }
    unions
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{BaseType, Schema};
    use uninomial::syntax::Var;

    fn hole(name: &str) -> UExpr {
        UExpr::rel(name, Term::Unit)
    }

    fn atom(name: &str) -> UExpr {
        UExpr::rel(name, Term::Unit)
    }

    fn var(id: u32) -> Var {
        Var {
            id,
            schema: Schema::leaf(BaseType::Int),
        }
    }

    #[test]
    fn holes_bind_and_stay_nonlinear() {
        // ‖?a + ?a‖ matches ‖R + R‖ but not ‖R + S‖.
        let pat = UExpr::squash(UExpr::add(hole("?a"), hole("?a")));
        let yes = UExpr::squash(UExpr::add(atom("R"), atom("R")));
        let no = UExpr::squash(UExpr::add(atom("R"), atom("S")));
        let binds = match_rule(&pat, &yes).expect("matches");
        assert_eq!(binds["?a"], atom("R"));
        assert!(match_rule(&pat, &no).is_none());
    }

    #[test]
    fn capture_is_rejected() {
        // ‖?a‖ under Σ: matching Σx.‖R(x)‖'s squash body is fine at the
        // squash class, but a pattern Σx.‖?a‖ must not bind ?a := R(x).
        let v = var(0);
        let pat = UExpr::sum(v.clone(), UExpr::squash(hole("?a")));
        let tgt = UExpr::sum(v.clone(), UExpr::squash(UExpr::rel("R", Term::var(&v))));
        assert!(match_rule(&pat, &tgt).is_none(), "capture must be rejected");
        // A binder-free body is fine.
        let tgt2 = UExpr::sum(v, UExpr::squash(atom("R")));
        assert!(match_rule(&pat, &tgt2).is_some());
    }

    #[test]
    fn binders_match_modulo_alpha() {
        let (p, t) = (var(0), var(7));
        let pat = UExpr::sum(p.clone(), UExpr::rel("R", Term::var(&p)));
        let tgt = UExpr::sum(t.clone(), UExpr::rel("R", Term::var(&t)));
        assert!(match_rule(&pat, &tgt).is_some());
        // Mismatched bound occurrences do not.
        let other = var(9);
        let bad = UExpr::sum(t, UExpr::rel("R", Term::var(&other)));
        assert!(match_rule(&pat, &bad).is_none());
    }

    #[test]
    fn instantiation_replaces_holes() {
        let rhs = UExpr::squash(hole("?a"));
        let mut binds = HashMap::new();
        binds.insert("?a".to_owned(), atom("R"));
        assert_eq!(instantiate_schema(&rhs, &binds), UExpr::squash(atom("R")));
    }

    #[test]
    fn ac_spines_match_as_multisets() {
        // Readback nests `+`/`×` by class id, so the same multiset can
        // present under any grouping and order — all must match.
        let pat = UExpr::mul(
            hole("?a"),
            UExpr::mul(UExpr::mul(atom("B"), atom("C")), atom("D")),
        );
        let tgt = UExpr::mul(
            UExpr::mul(atom("D"), atom("A")),
            UExpr::mul(atom("C"), atom("B")),
        );
        let binds = match_rule(&pat, &tgt).expect("AC match");
        assert_eq!(binds["?a"], atom("A"), "hole takes the leftover operand");
        // A missing operand is still a mismatch.
        let short = UExpr::mul(atom("B"), UExpr::mul(atom("C"), atom("D")));
        assert!(match_rule(&pat, &short).is_none());
    }

    #[test]
    fn eq_matches_under_both_orientations() {
        let v = var(0);
        let w = var(1);
        let pat = UExpr::sum(
            v.clone(),
            UExpr::sum(w.clone(), UExpr::eq(Term::var(&v), Term::var(&w))),
        );
        // Same binder structure, `=` children swapped (class-id sorting
        // can emit either orientation).
        let tgt = UExpr::sum(
            v.clone(),
            UExpr::sum(w.clone(), UExpr::eq(Term::var(&w), Term::var(&v))),
        );
        assert!(match_rule(&pat, &tgt).is_some());
    }

    #[test]
    fn builtin_rewrite_names_never_collide_with_mined_labels() {
        // Profile attribution keys mined rows by `mined:`-prefixed
        // labels; the built-in catalog must never produce one, or a
        // mined row could shadow a catalog row in `scale diff`
        // rule_attribution series.
        for rw in crate::rewrite::default_rewrites() {
            assert!(
                !rw.name().starts_with(MINED_LABEL_PREFIX),
                "built-in rewrite {:?} collides with the mined namespace",
                rw.name()
            );
        }
    }

    #[test]
    fn alpha_canonical_identifies_renamings() {
        let (a, b) = (var(3), var(8));
        let e1 = UExpr::sum(a.clone(), UExpr::rel("R", Term::var(&a)));
        let e2 = UExpr::sum(b.clone(), UExpr::rel("R", Term::var(&b)));
        assert_eq!(alpha_canonical(&e1), alpha_canonical(&e2));
        let e3 = UExpr::sum(b.clone(), UExpr::rel("S", Term::var(&b)));
        assert_ne!(alpha_canonical(&e1), alpha_canonical(&e3));
    }
}
