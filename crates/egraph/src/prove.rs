//! The saturation tactic: prove `lhs = rhs` by equality saturation,
//! producing the same kind of auditable [`Proof`] as the
//! normalization-based tactics.
//!
//! The pipeline mirrors [`uninomial::prove::prove_eq`]'s opening moves —
//! functional extensionality, trusted normalization, integrity-axiom
//! saturation — and then replaces the bespoke matching tactics with the
//! generic e-graph search: both normal forms are seeded, the compiled
//! lemma rewrites run under budget, and success extracts the union-find
//! explanation into the proof trace.

use crate::session::Session;
use crate::solve::{Budget, Outcome, Solver, Stats};
use std::fmt;
use uninomial::axioms::RelAxiom;
use uninomial::lemmas::Lemma;
use uninomial::normalize::{normalize, normalize_with_cache, NormCache, Trace};
use uninomial::prove::{Method, Proof};
use uninomial::syntax::{UExpr, VarGen};

/// Failure to prove by saturation (not a disproof): the normal forms,
/// plus how the search ended and its statistics — budget exhaustion is
/// reported distinctly from genuine saturation.
#[derive(Clone, Debug)]
pub struct SaturateFailure {
    /// Pretty-printed normal form of the left-hand side.
    pub lhs_nf: String,
    /// Pretty-printed normal form of the right-hand side.
    pub rhs_nf: String,
    /// How the search stopped (never [`Outcome::Proved`]).
    pub outcome: Outcome,
    /// Search statistics at stop time.
    pub stats: Stats,
}

impl fmt::Display for SaturateFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "not proved: {} after {} iterations / {} e-nodes\n  lhs ⇓ {}\n  rhs ⇓ {}",
            self.outcome, self.stats.iters, self.stats.nodes, self.lhs_nf, self.rhs_nf
        )
    }
}

impl std::error::Error for SaturateFailure {}

/// Proves `lhs = rhs` by equality saturation under the given budget.
///
/// # Errors
///
/// Returns [`SaturateFailure`] when the goal classes never merge; the
/// outcome distinguishes saturation from budget exhaustion.
pub fn prove_eq_saturate(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[RelAxiom],
    gen: &mut VarGen,
    budget: Budget,
) -> Result<Proof, SaturateFailure> {
    prove_eq_saturate_impl(lhs, rhs, axioms, gen, None, budget)
}

/// [`prove_eq_saturate`] with memoized normalization through a reusable
/// [`NormCache`] — the batch engine's per-worker entry point.
///
/// # Errors
///
/// Returns [`SaturateFailure`] when the goal classes never merge.
pub fn prove_eq_saturate_cached(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[RelAxiom],
    gen: &mut VarGen,
    cache: &mut NormCache,
    budget: Budget,
) -> Result<Proof, SaturateFailure> {
    prove_eq_saturate_impl(lhs, rhs, axioms, gen, Some(cache), budget)
}

/// [`prove_eq_saturate_cached`] through a persistent [`Session`]: the
/// goal-closing search is memoized across goals (and its answer is
/// byte-identical to the fresh-solver path by construction — see the
/// [`Session`] docs), and the goal's sides additionally seed the
/// session's shared multi-seed graph for cross-goal discovery.
///
/// # Errors
///
/// Returns [`SaturateFailure`] when the goal classes never merge.
pub fn prove_eq_saturate_session(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[RelAxiom],
    gen: &mut VarGen,
    cache: &mut NormCache,
    session: &mut Session,
) -> Result<Proof, SaturateFailure> {
    let (mut trace, nl, nr) = saturate_prefix(lhs, rhs, axioms, gen, Some(cache));
    let el = nl.reify();
    let er = nr.reify();
    let prop = nl.is_prop() && nr.is_prop();
    match session.close_goal(&el, &er, prop, &mut trace) {
        Ok(()) => Ok(Proof::new(Method::Saturate, trace, nl, nr)),
        Err((outcome, stats)) => Err(SaturateFailure {
            lhs_nf: nl.to_string(),
            rhs_nf: nr.to_string(),
            outcome,
            stats,
        }),
    }
}

/// The trace prefix every saturation proof shares: functional
/// extensionality, (possibly memoized) normalization, and declared
/// integrity-constraint axioms.
fn saturate_prefix(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[RelAxiom],
    gen: &mut VarGen,
    cache: Option<&mut NormCache>,
) -> (
    Trace,
    uninomial::normalize::Spnf,
    uninomial::normalize::Spnf,
) {
    let mut trace = Trace::new();
    trace.step(
        Lemma::FunExt,
        "reduce query equality to pointwise equality of denotations",
    );
    let (nl, nr) = match cache {
        Some(cache) => (
            normalize_with_cache(lhs, gen, &mut trace, cache),
            normalize_with_cache(rhs, gen, &mut trace, cache),
        ),
        None => (
            normalize(lhs, gen, &mut trace),
            normalize(rhs, gen, &mut trace),
        ),
    };
    let nl = uninomial::axioms::saturate(&nl, axioms, gen, &mut trace);
    let nr = uninomial::axioms::saturate(&nr, axioms, gen, &mut trace);
    (trace, nl, nr)
}

fn prove_eq_saturate_impl(
    lhs: &UExpr,
    rhs: &UExpr,
    axioms: &[RelAxiom],
    gen: &mut VarGen,
    cache: Option<&mut NormCache>,
    budget: Budget,
) -> Result<Proof, SaturateFailure> {
    let (mut trace, nl, nr) = saturate_prefix(lhs, rhs, axioms, gen, cache);
    let el = nl.reify();
    let er = nr.reify();
    let mut solver = Solver::new(budget);
    solver.reserve_names_above(el.max_var_id().max(er.max_var_id()));
    let l = solver.seed_expr(&el);
    let r = solver.seed_expr(&er);
    // Propositional goals may be equal only up to bi-implication; the
    // `PropExt` rewrite works on squash classes, and `‖P‖ = P` for
    // propositions (SquashProp), so seeding the squash-wrapped sides
    // routes such goals through it.
    if nl.is_prop() && nr.is_prop() {
        solver.seed_expr(&UExpr::squash(el.clone()));
        solver.seed_expr(&UExpr::squash(er.clone()));
    }
    let (outcome, stats) = solver.run(l, r);
    if outcome == Outcome::Proved {
        solver.explain_into(l, r, &mut trace);
        return Ok(Proof::new(Method::Saturate, trace, nl, nr));
    }
    Err(SaturateFailure {
        lhs_nf: nl.to_string(),
        rhs_nf: nr.to_string(),
        outcome,
        stats,
    })
}
