//! The rewrite compiler: from the trusted axiom catalog
//! ([`uninomial::lemmas::Lemma`]) to executable e-graph rewrites.
//!
//! Every rewrite the saturation solver fires is an instance of a named
//! lemma, and [`compile`] is the (total) table mapping each lemma to its
//! executable form. Three compilation shapes exist:
//!
//! - **structural** — the law is decided by the e-graph's canonical
//!   forms themselves (sorted n-ary `+`/`×` children for `AddAcu`/
//!   `MulAcu` commutativity, de Bruijn conversion for `AlphaRename`,
//!   child ordering for `EqSym`) or by the theory-aware rebuild in
//!   [`crate::graph`] (units, `MulZero`, `SumZero`, `EqRefl`,
//!   `EqConstNeq`, tuple β, squash/negation of `0`/`1`). `compile`
//!   returns no searching rewrite for these;
//! - **syntactic search** — a match over e-nodes that constructs the
//!   rewritten node directly (distributivity, `SumAdd`, the squash and
//!   negation laws, `EqPairSplit`, tuple η);
//! - **conditional search** — a match whose side condition is discharged
//!   by the trusted deductive/equational oracles of `uninomial`
//!   (absorption between products, `PropExt` between squash bodies);
//!   the oracle's own lemma steps are attached to the union's
//!   justification so the extracted proof stays complete.
//!
//! Binder-crossing rewrites (`SumHoist`, `SumSingleton`, Σ-interchange)
//! are *extraction-based*: the class is read back as a named tree, the
//! lemma is applied with the ordinary capture-avoiding operations of
//! [`uninomial::syntax`], and the result is re-seeded under the original
//! binder context.

use crate::graph::EGraph;
use crate::lang::{BinderStack, ENode, NameEnv};
use crate::unionfind::Id;
use std::collections::{HashMap, HashSet};
use uninomial::deduce::Ctx;
use uninomial::equiv;
use uninomial::lemmas::Lemma;
use uninomial::normalize::{normalize, Spnf, Trace};
use uninomial::syntax::{Term, UExpr, Var, VarGen};
use uninomial::{Interner, UExprId};

/// All lemmas of the catalog, in declaration order.
pub const ALL_LEMMAS: [Lemma; 28] = [
    Lemma::AddAcu,
    Lemma::MulAcu,
    Lemma::MulZero,
    Lemma::Distrib,
    Lemma::SumAdd,
    Lemma::SumHoist,
    Lemma::SumZero,
    Lemma::SumPairSplit,
    Lemma::SumSingleton,
    Lemma::SquashBase,
    Lemma::SquashDedup,
    Lemma::SquashMul,
    Lemma::SquashProp,
    Lemma::NotBase,
    Lemma::NotAdd,
    Lemma::NotSquash,
    Lemma::Absorption,
    Lemma::EqRefl,
    Lemma::EqConstNeq,
    Lemma::EqPairSplit,
    Lemma::EqSym,
    Lemma::EqCongruence,
    Lemma::TupleBeta,
    Lemma::FunExt,
    Lemma::PropExt,
    Lemma::ExistsWitness,
    Lemma::CaseSplit,
    Lemma::AlphaRename,
];

/// An executable rewrite, tagged with the lemma it instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rewrite {
    /// `a × (b + c) = a × b + a × c` (expansion direction).
    Distrib,
    /// `Σx.(f + g) = Σx.f + Σx.g` (splitting direction).
    SumAdd,
    /// `a × Σx.f = Σx.(a × f)` when `x ∉ fv(a)` — applied in the
    /// hoisting-out direction on extracted trees.
    SumHoist,
    /// `Σx.(x = e) × P x = P e` when `x ∉ fv(e)`.
    SumSingleton,
    /// `Σx.Σy.f = Σy.Σx.f` — Σ-interchange (Fubini), the infinitary
    /// reading of `+`-commutativity.
    SumSwap,
    /// `‖‖n‖‖ = ‖n‖`.
    SquashCollapse,
    /// Duplicate factors/summands collapse under `‖·‖`.
    SquashDedup,
    /// `‖a × b‖ = ‖a‖ × ‖b‖`.
    SquashMul,
    /// `‖p‖ = p` for propositional `p`.
    SquashProp,
    /// `¬¬n = ‖n‖`.
    NotNot,
    /// `¬(a + b) = ¬a × ¬b`.
    NotAdd,
    /// `¬‖n‖ = ¬n`.
    NotSquash,
    /// `((a,b) = (c,d)) = (a = c) × (b = d)`.
    EqPairSplit,
    /// `(t.1, t.2) = t` (tuple η; β is structural).
    TupleEta,
    /// Lemma 5.3 + congruence between whole products: two products with
    /// equal relation-atom multisets (modulo their own equalities) and
    /// mutually entailed propositional factors are equal.
    ProductEquiv,
    /// `(A ↔ B) ⇒ (‖A‖ = ‖B‖)` between squash bodies, discharged by the
    /// deductive bi-implication prover.
    PropExt,
}

impl Rewrite {
    /// The trusted lemma this rewrite instantiates.
    pub fn lemma(self) -> Lemma {
        match self {
            Rewrite::Distrib => Lemma::Distrib,
            Rewrite::SumAdd => Lemma::SumAdd,
            Rewrite::SumHoist => Lemma::SumHoist,
            Rewrite::SumSingleton => Lemma::SumSingleton,
            Rewrite::SumSwap => Lemma::AddAcu,
            Rewrite::SquashCollapse => Lemma::SquashBase,
            Rewrite::SquashDedup => Lemma::SquashDedup,
            Rewrite::SquashMul => Lemma::SquashMul,
            Rewrite::SquashProp => Lemma::SquashProp,
            Rewrite::NotNot => Lemma::NotBase,
            Rewrite::NotAdd => Lemma::NotAdd,
            Rewrite::NotSquash => Lemma::NotSquash,
            Rewrite::EqPairSplit => Lemma::EqPairSplit,
            Rewrite::TupleEta => Lemma::TupleBeta,
            Rewrite::ProductEquiv => Lemma::Absorption,
            Rewrite::PropExt => Lemma::PropExt,
        }
    }

    /// Stable attribution label of this rewrite (profile row key).
    pub fn name(self) -> &'static str {
        match self {
            Rewrite::Distrib => "Distrib",
            Rewrite::SumAdd => "SumAdd",
            Rewrite::SumHoist => "SumHoist",
            Rewrite::SumSingleton => "SumSingleton",
            Rewrite::SumSwap => "SumSwap",
            Rewrite::SquashCollapse => "SquashCollapse",
            Rewrite::SquashDedup => "SquashDedup",
            Rewrite::SquashMul => "SquashMul",
            Rewrite::SquashProp => "SquashProp",
            Rewrite::NotNot => "NotNot",
            Rewrite::NotAdd => "NotAdd",
            Rewrite::NotSquash => "NotSquash",
            Rewrite::EqPairSplit => "EqPairSplit",
            Rewrite::TupleEta => "TupleEta",
            Rewrite::ProductEquiv => "ProductEquiv",
            Rewrite::PropExt => "PropExt",
        }
    }
}

/// Compiles one lemma into its searching rewrites. An empty vector means
/// the lemma is *structural*: decided by canonical forms and the
/// theory-aware rebuild (or, for the proof-level lemmas, built into the
/// goal setup and the side-condition oracles) rather than searched for.
pub fn compile(lemma: Lemma) -> Vec<Rewrite> {
    match lemma {
        // Commutativity/associativity/units: sorted n-ary children plus
        // rebuild-time unit dropping. The searching residue of `AddAcu`
        // is Σ-interchange (Σ is an infinitary `+`).
        Lemma::AddAcu => vec![Rewrite::SumSwap],
        Lemma::MulAcu => vec![],
        Lemma::MulZero => vec![],
        Lemma::Distrib => vec![Rewrite::Distrib],
        Lemma::SumAdd => vec![Rewrite::SumAdd],
        Lemma::SumHoist => vec![Rewrite::SumHoist],
        Lemma::SumZero => vec![],
        // Pair-valued binders are split by the (lemma-tracing) normalizer
        // before seeding; no pair-schema Σ reaches the e-graph.
        Lemma::SumPairSplit => vec![],
        Lemma::SumSingleton => vec![Rewrite::SumSingleton],
        Lemma::SquashBase => vec![Rewrite::SquashCollapse],
        Lemma::SquashDedup => vec![Rewrite::SquashDedup],
        Lemma::SquashMul => vec![Rewrite::SquashMul],
        Lemma::SquashProp => vec![Rewrite::SquashProp],
        Lemma::NotBase => vec![Rewrite::NotNot],
        Lemma::NotAdd => vec![Rewrite::NotAdd],
        Lemma::NotSquash => vec![Rewrite::NotSquash],
        Lemma::Absorption => vec![Rewrite::ProductEquiv],
        Lemma::EqRefl => vec![],
        Lemma::EqConstNeq => vec![],
        Lemma::EqPairSplit => vec![Rewrite::EqPairSplit],
        Lemma::EqSym => vec![],
        // Congruence closure is the rebuild loop; transport inside a
        // product is part of the `ProductEquiv` oracle.
        Lemma::EqCongruence => vec![],
        Lemma::TupleBeta => vec![Rewrite::TupleEta],
        // Applied once at goal setup (queries → pointwise denotations).
        Lemma::FunExt => vec![],
        Lemma::PropExt => vec![Rewrite::PropExt],
        // Witness search and case splitting live inside the deductive
        // oracle that discharges `PropExt`/`Absorption` side conditions.
        Lemma::ExistsWitness => vec![],
        Lemma::CaseSplit => vec![],
        // α-equivalence is structural under the de Bruijn conversion.
        Lemma::AlphaRename => vec![],
    }
}

/// The full default rewrite set: every lemma of the catalog, compiled.
pub fn default_rewrites() -> Vec<Rewrite> {
    ALL_LEMMAS.iter().flat_map(|&l| compile(l)).collect()
}

/// A memoized oracle verdict for one conditional-rewrite pair.
///
/// `lhs`/`rhs` are the α-canonical fingerprints (hash-consed ids in the
/// solver's memo interner) of the two extracted expressions the oracle
/// was asked about. A later attempt on the same canonical class pair
/// replays the verdict only when its own fingerprints match — class
/// *content* can change while the canonical ids survive (the documented
/// reason `attempted` is cleared on progress), and a changed extraction
/// must re-ask the oracle, not trust a stale answer.
#[derive(Clone, Copy, Debug)]
pub struct OracleVerdict {
    lhs: UExprId,
    rhs: UExprId,
    proved: bool,
}

/// Cross-iteration memo of oracle verdicts, keyed like `attempted` by
/// (rewrite, ordered canonical pair). Unlike `attempted` it is *never*
/// cleared on progress: the fingerprint check inside each entry is what
/// decides whether the cached verdict still applies. Positive verdicts
/// self-cache through the union itself (the pair's classes merge and the
/// `same` check skips them), so in steady state this suppresses the
/// repeated *failed* oracle calls that otherwise dominate stalled
/// `ProductEquiv`/`PropExt` rounds.
pub type OracleMemo = HashMap<(Rewrite, Id, Id), OracleVerdict>;

/// Interns `(a, b)` with all variables renamed, jointly and in first
/// occurrence order, to a canonical sequence: extractions that differ
/// only in the fresh names `NameEnv` happened to allocate produce equal
/// fingerprints, while any structural or sharing difference (including
/// which occurrences alias the same variable) changes them.
fn pair_fingerprint(interner: &mut Interner, a: &UExpr, b: &UExpr) -> (UExprId, UExprId) {
    let mut map: HashMap<u32, u32> = HashMap::new();
    let ra = rename_uexpr(a, &mut map);
    let rb = rename_uexpr(b, &mut map);
    (interner.intern(&ra), interner.intern(&rb))
}

fn rename_var(v: &Var, map: &mut HashMap<u32, u32>) -> Var {
    let next = map.len() as u32;
    let id = *map.entry(v.id).or_insert(next);
    Var {
        id,
        schema: v.schema.clone(),
    }
}

pub(crate) fn rename_uexpr(e: &UExpr, map: &mut HashMap<u32, u32>) -> UExpr {
    match e {
        UExpr::Zero => UExpr::Zero,
        UExpr::One => UExpr::One,
        UExpr::Add(a, b) => UExpr::add(rename_uexpr(a, map), rename_uexpr(b, map)),
        UExpr::Mul(a, b) => UExpr::mul(rename_uexpr(a, map), rename_uexpr(b, map)),
        UExpr::Not(x) => UExpr::not(rename_uexpr(x, map)),
        UExpr::Squash(x) => UExpr::squash(rename_uexpr(x, map)),
        UExpr::Sum(v, b) => {
            let v = rename_var(v, map);
            UExpr::sum(v, rename_uexpr(b, map))
        }
        UExpr::Eq(s, t) => UExpr::eq(rename_term(s, map), rename_term(t, map)),
        UExpr::Rel(r, t) => UExpr::Rel(r.clone(), rename_term(t, map)),
        UExpr::Pred(p, t) => UExpr::Pred(p.clone(), rename_term(t, map)),
    }
}

fn rename_term(t: &Term, map: &mut HashMap<u32, u32>) -> Term {
    match t {
        Term::Var(v) => Term::Var(rename_var(v, map)),
        Term::Unit => Term::Unit,
        Term::Const(c) => Term::Const(c.clone()),
        Term::Pair(a, b) => Term::pair(rename_term(a, map), rename_term(b, map)),
        Term::Fst(x) => Term::fst(rename_term(x, map)),
        Term::Snd(x) => Term::snd(rename_term(x, map)),
        Term::Fn(f, args) => Term::Fn(
            f.clone(),
            args.iter().map(|a| rename_term(a, map)).collect(),
        ),
        Term::Agg(name, v, body) => {
            let v = rename_var(v, map);
            Term::agg(name.clone(), v, rename_uexpr(body, map))
        }
    }
}

/// Shared per-iteration state handed to each rewrite's match phase.
#[derive(Debug)]
pub struct RewriteCtx<'a> {
    /// Fresh-variable source (extraction naming, oracle calls).
    pub gen: &'a mut VarGen,
    /// `(canonical node, class)` snapshot taken at iteration start.
    pub snapshot: &'a [(ENode, Id)],
    /// Minimum-size extraction table at iteration start.
    pub best: &'a HashMap<Id, (usize, ENode)>,
    /// Classes known to denote propositions.
    pub props: &'a HashSet<Id>,
    /// Conditional-rewrite pairs already attempted (and failed); keyed
    /// by canonical ids, so post-union retries happen naturally.
    pub attempted: &'a mut HashSet<(Rewrite, Id, Id)>,
    /// Cap on oracle invocations per iteration (they are the expensive
    /// part of a round).
    pub oracle_budget: usize,
    /// Match candidates the current rewrite pass constructed (union
    /// attempts / oracle invocations). The solver reads the delta around
    /// each [`Rewrite::apply`] for per-rule attribution; plain counting,
    /// never consulted by search.
    pub matches: usize,
    /// Oracle invocations of the current rewrite pass (delta-read by the
    /// solver alongside `matches`); memo hits are not counted — only
    /// real invocations.
    pub oracle_calls: usize,
    /// Cross-iteration oracle verdict memo (solver-owned).
    pub oracle_memo: &'a mut OracleMemo,
    /// Hash-consing interner backing the memo's fingerprints
    /// (solver-owned, grows with the set of distinct extractions).
    pub memo_interner: &'a mut Interner,
}

impl RewriteCtx<'_> {
    fn pair_key(rw: Rewrite, a: Id, b: Id) -> (Rewrite, Id, Id) {
        if a <= b {
            (rw, a, b)
        } else {
            (rw, b, a)
        }
    }

    fn already_tried(&self, rw: Rewrite, a: Id, b: Id) -> bool {
        self.attempted.contains(&Self::pair_key(rw, a, b))
    }

    fn mark_tried(&mut self, rw: Rewrite, a: Id, b: Id) {
        self.attempted.insert(Self::pair_key(rw, a, b));
    }
}

/// Re-seeds a named expression into the e-graph under the given binder
/// scope (innermost last), returning its class.
pub fn reseed(eg: &mut EGraph, expr: &UExpr, scope: Vec<Var>) -> Id {
    let mut interner = Interner::new();
    let id = interner.intern(expr);
    let mut stack = BinderStack::with_scope(scope);
    crate::lang::seed_uexpr(&interner, id, &mut stack, &mut |n| eg.add(n))
}

/// Flattens a named product into factors (inverse of `UExpr::product`).
fn factors(e: &UExpr) -> Vec<UExpr> {
    match e {
        UExpr::Mul(a, b) => {
            let mut out = factors(a);
            out.extend(factors(b));
            out
        }
        UExpr::One => Vec::new(),
        other => vec![other.clone()],
    }
}

impl Rewrite {
    /// Runs one match-and-apply pass. Returns the number of unions
    /// performed.
    pub fn apply(self, eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
        match self {
            Rewrite::Distrib => apply_distrib(eg, ctx),
            Rewrite::SumAdd => apply_sum_add(eg, ctx),
            Rewrite::SumHoist => apply_sum_extract(eg, ctx, self),
            Rewrite::SumSingleton => apply_sum_extract(eg, ctx, self),
            Rewrite::SumSwap => apply_sum_extract(eg, ctx, self),
            Rewrite::SquashCollapse => apply_squash_collapse(eg, ctx),
            Rewrite::SquashDedup => apply_squash_dedup(eg, ctx),
            Rewrite::SquashMul => apply_squash_mul(eg, ctx),
            Rewrite::SquashProp => apply_squash_prop(eg, ctx),
            Rewrite::NotNot => apply_not_not(eg, ctx),
            Rewrite::NotAdd => apply_not_add(eg, ctx),
            Rewrite::NotSquash => apply_not_squash(eg, ctx),
            Rewrite::EqPairSplit => apply_eq_pair_split(eg, ctx),
            Rewrite::TupleEta => apply_tuple_eta(eg, ctx),
            Rewrite::ProductEquiv => apply_product_equiv(eg, ctx),
            Rewrite::PropExt => apply_prop_ext(eg, ctx),
        }
    }
}

/// `Mul[..., c, ...]` where `c`'s class contains `Add[k₁..kₙ]` becomes
/// `Add[Mul[..., k₁, ...], ..., Mul[..., kₙ, ...]]`.
fn apply_distrib(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Mul(xs) = node else { continue };
        for (i, &x) in xs.iter().enumerate() {
            let adds: Vec<Vec<Id>> = eg
                .class_nodes(x)
                .into_iter()
                .filter_map(|n| match n {
                    ENode::Add(kids) => Some(kids),
                    _ => None,
                })
                .take(1)
                .collect();
            for kids in adds {
                let summands: Vec<Id> = kids
                    .iter()
                    .map(|&k| {
                        let mut ys = xs.clone();
                        ys[i] = k;
                        eg.add(ENode::Mul(ys))
                    })
                    .collect();
                let rhs = eg.add(ENode::Add(summands));
                ctx.matches += 1;
                if eg.union(*id, rhs, Lemma::Distrib, "a × (b + c) = a×b + a×c") {
                    unions += 1;
                }
            }
        }
    }
    unions
}

/// `Σx.(f + g) = Σx.f + Σx.g`.
fn apply_sum_add(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Sum(schema, body) = node else {
            continue;
        };
        let adds: Vec<Vec<Id>> = eg
            .class_nodes(*body)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Add(kids) => Some(kids),
                _ => None,
            })
            .take(1)
            .collect();
        for kids in adds {
            let sums: Vec<Id> = kids
                .iter()
                .map(|&k| eg.add(ENode::Sum(schema.clone(), k)))
                .collect();
            let rhs = eg.add(ENode::Add(sums));
            ctx.matches += 1;
            if eg.union(*id, rhs, Lemma::SumAdd, "Σx.(f + g) = Σx.f + Σx.g") {
                unions += 1;
            }
        }
    }
    unions
}

/// The extraction-based binder rewrites: hoisting, singleton-sum
/// elimination, and Σ-interchange all read the `Σ` class back as a named
/// tree, apply the lemma with capture-avoiding syntax operations, and
/// re-seed the result in the original context.
fn apply_sum_extract(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>, rw: Rewrite) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Sum(_, _) = node else { continue };
        let mut env = NameEnv::new(ctx.gen);
        let Some(expr) = eg.extract_uexpr(ctx.best, *id, &mut env) else {
            continue;
        };
        let UExpr::Sum(v, body) = &expr else { continue };
        let rewritten: Option<(UExpr, String)> = match rw {
            Rewrite::SumSwap => match body.as_ref() {
                UExpr::Sum(w, inner) => Some((
                    UExpr::sum(w.clone(), UExpr::sum(v.clone(), (**inner).clone())),
                    "Σ-interchange (Fubini)".to_owned(),
                )),
                _ => None,
            },
            Rewrite::SumSingleton => singleton_eliminate(v, body),
            Rewrite::SumHoist => hoist(v, body),
            _ => unreachable!("not an extraction rewrite"),
        };
        let Some((expr2, note)) = rewritten else {
            continue;
        };
        let scope = env.outer_scope();
        let rhs = reseed(eg, &expr2, scope);
        ctx.matches += 1;
        if eg.union(*id, rhs, rw.lemma(), note) {
            unions += 1;
        }
    }
    unions
}

/// `Σv.(v = e) × P v = P e` when `v ∉ fv(e)`.
fn singleton_eliminate(v: &Var, body: &UExpr) -> Option<(UExpr, String)> {
    let fs = factors(body);
    for (i, f) in fs.iter().enumerate() {
        let UExpr::Eq(a, b) = f else { continue };
        let repl = if *a == Term::var(v) && !b.free_vars().contains(v) {
            Some(b.clone())
        } else if *b == Term::var(v) && !a.free_vars().contains(v) {
            Some(a.clone())
        } else {
            None
        };
        let Some(repl) = repl else { continue };
        let rest: Vec<UExpr> = fs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, g)| g.subst(v, &repl))
            .collect();
        return Some((
            UExpr::product(rest),
            format!("Σ{} eliminated by {} := {repl}", v.name(), v.name()),
        ));
    }
    None
}

/// `Σv.(a × f v) = a × Σv.f v` for the `v`-free factors `a`.
fn hoist(v: &Var, body: &UExpr) -> Option<(UExpr, String)> {
    let fs = factors(body);
    let (free, bound): (Vec<UExpr>, Vec<UExpr>) =
        fs.into_iter().partition(|f| !f.free_vars().contains(v));
    if free.is_empty() {
        return None;
    }
    let inner = UExpr::sum(v.clone(), UExpr::product(bound));
    let note = format!("hoisting {} {}-free factors out of Σ", free.len(), v.name());
    Some((UExpr::mul(UExpr::product(free), inner), note))
}

/// `‖‖n‖‖ = ‖n‖`.
fn apply_squash_collapse(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Squash(x) = node else { continue };
        let inner: Vec<Id> = eg
            .class_nodes(*x)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Squash(y) => Some(y),
                _ => None,
            })
            .collect();
        for y in inner {
            let collapsed = eg.add(ENode::Squash(y));
            ctx.matches += 1;
            if eg.union(*id, collapsed, Lemma::SquashBase, "‖‖n‖‖ = ‖n‖") {
                unions += 1;
            }
        }
    }
    unions
}

/// Duplicate factors and summands collapse under `‖·‖`.
fn apply_squash_dedup(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Squash(x) = node else { continue };
        for n in eg.class_nodes(*x) {
            let (dedup, op): (Option<ENode>, &str) = match &n {
                ENode::Mul(kids) => {
                    let mut d = kids.clone();
                    d.dedup();
                    if d.len() < kids.len() {
                        (Some(ENode::Mul(d)), "×")
                    } else {
                        (None, "×")
                    }
                }
                ENode::Add(kids) => {
                    let mut d = kids.clone();
                    d.dedup();
                    if d.len() < kids.len() {
                        (Some(ENode::Add(d)), "+")
                    } else {
                        (None, "+")
                    }
                }
                _ => (None, ""),
            };
            if let Some(dn) = dedup {
                let inner = eg.add(dn);
                let rhs = eg.add(ENode::Squash(inner));
                ctx.matches += 1;
                if eg.union(
                    *id,
                    rhs,
                    Lemma::SquashDedup,
                    format!("dedup under ‖·‖ ({op})"),
                ) {
                    unions += 1;
                }
            }
        }
    }
    unions
}

/// `‖a × b‖ = ‖a‖ × ‖b‖`.
fn apply_squash_mul(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Squash(x) = node else { continue };
        let muls: Vec<Vec<Id>> = eg
            .class_nodes(*x)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Mul(kids) => Some(kids),
                _ => None,
            })
            .take(1)
            .collect();
        for kids in muls {
            let squashed: Vec<Id> = kids.iter().map(|&k| eg.add(ENode::Squash(k))).collect();
            let rhs = eg.add(ENode::Mul(squashed));
            ctx.matches += 1;
            if eg.union(*id, rhs, Lemma::SquashMul, "‖a × b‖ = ‖a‖ × ‖b‖") {
                unions += 1;
            }
        }
    }
    unions
}

/// `‖p‖ = p` for propositional classes.
fn apply_squash_prop(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Squash(x) = node else { continue };
        if ctx.props.contains(x) {
            ctx.matches += 1;
            if eg.union(*id, *x, Lemma::SquashProp, "‖prop‖ = prop") {
                unions += 1;
            }
        }
    }
    unions
}

/// `¬¬n = ‖n‖`.
fn apply_not_not(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Not(x) = node else { continue };
        let inner: Vec<Id> = eg
            .class_nodes(*x)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Not(y) => Some(y),
                _ => None,
            })
            .collect();
        for y in inner {
            let rhs = eg.add(ENode::Squash(y));
            ctx.matches += 1;
            if eg.union(*id, rhs, Lemma::NotBase, "¬¬n = ‖n‖") {
                unions += 1;
            }
        }
    }
    unions
}

/// `¬(a + b) = ¬a × ¬b`.
fn apply_not_add(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Not(x) = node else { continue };
        let adds: Vec<Vec<Id>> = eg
            .class_nodes(*x)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Add(kids) => Some(kids),
                _ => None,
            })
            .take(1)
            .collect();
        for kids in adds {
            let negs: Vec<Id> = kids.iter().map(|&k| eg.add(ENode::Not(k))).collect();
            let rhs = eg.add(ENode::Mul(negs));
            ctx.matches += 1;
            if eg.union(*id, rhs, Lemma::NotAdd, "¬(a + b) = ¬a × ¬b") {
                unions += 1;
            }
        }
    }
    unions
}

/// `¬‖n‖ = ¬n`.
fn apply_not_squash(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Not(x) = node else { continue };
        let inner: Vec<Id> = eg
            .class_nodes(*x)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Squash(y) => Some(y),
                _ => None,
            })
            .collect();
        for y in inner {
            let rhs = eg.add(ENode::Not(y));
            ctx.matches += 1;
            if eg.union(*id, rhs, Lemma::NotSquash, "¬‖n‖ = ¬n") {
                unions += 1;
            }
        }
    }
    unions
}

/// `((a,b) = (c,d)) = (a = c) × (b = d)`.
fn apply_eq_pair_split(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Eq(l, r) = node else { continue };
        let lp: Vec<(Id, Id)> = eg
            .class_nodes(*l)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Pair(a, b) => Some((a, b)),
                _ => None,
            })
            .take(1)
            .collect();
        let rp: Vec<(Id, Id)> = eg
            .class_nodes(*r)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Pair(a, b) => Some((a, b)),
                _ => None,
            })
            .take(1)
            .collect();
        for &(a, b) in &lp {
            for &(c, d) in &rp {
                let e1 = eg.add(ENode::Eq(a, c));
                let e2 = eg.add(ENode::Eq(b, d));
                let rhs = eg.add(ENode::Mul(vec![e1, e2]));
                ctx.matches += 1;
                if eg.union(*id, rhs, Lemma::EqPairSplit, "((a,b)=(c,d)) = (a=c)×(b=d)") {
                    unions += 1;
                }
            }
        }
    }
    unions
}

/// `(t.1, t.2) = t`.
fn apply_tuple_eta(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    for (node, id) in ctx.snapshot {
        let ENode::Pair(a, b) = node else { continue };
        let fsts: Vec<Id> = eg
            .class_nodes(*a)
            .into_iter()
            .filter_map(|n| match n {
                ENode::Fst(t) => Some(t),
                _ => None,
            })
            .collect();
        for t in fsts {
            // Stored child ids may be stale after unions; compare
            // canonical representatives.
            let snds: Vec<Id> = eg
                .class_nodes(*b)
                .into_iter()
                .filter_map(|n| match n {
                    ENode::Snd(u) => Some(u),
                    _ => None,
                })
                .collect();
            let tc = eg.find(t);
            let has_snd = snds.into_iter().any(|u| eg.find(u) == tc);
            if has_snd {
                ctx.matches += 1;
                if eg.union(*id, t, Lemma::TupleBeta, "(t.1, t.2) = t") {
                    unions += 1;
                }
            }
        }
    }
    unions
}

/// Rel-name multiset of a product class's children — the cheap
/// compatibility prefilter for the conditional rewrites.
fn rel_signature(eg: &mut EGraph, kids: &[Id]) -> Vec<String> {
    let mut sig = Vec::new();
    for &k in kids {
        for n in eg.class_nodes(k) {
            if let ENode::Rel(name, _) = n {
                sig.push(name);
                break;
            }
        }
    }
    sig.sort();
    sig
}

/// Normalizes an extracted expression into a single binder-free product
/// of atoms, if it has that shape.
fn as_product_atoms(expr: &UExpr, gen: &mut VarGen) -> Option<(Vec<uninomial::Atom>, Spnf)> {
    let mut scratch = Trace::new();
    let nf = normalize(expr, gen, &mut scratch);
    match nf.terms.as_slice() {
        [t] if t.vars.is_empty() => Some((t.atoms.clone(), nf.clone())),
        _ => None,
    }
}

/// Whole-product equality: for pairs of `×` classes with compatible
/// relation signatures, asks the trusted equational oracle
/// ([`uninomial::equiv::product_equiv`]) whether the two products are
/// equal by mutual entailment of propositional factors (Lemma 5.3) plus
/// congruence transport of relation arguments. The oracle's trace is
/// attached to the union.
fn apply_product_equiv(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    // Candidate classes: products and lone atoms cohabit via the `Mul`
    // nodes only — a product can also equal a single atom after
    // absorption drops to one factor, but that collapse is structural.
    let muls: Vec<(Vec<Id>, Id)> = ctx
        .snapshot
        .iter()
        .filter_map(|(n, id)| match n {
            ENode::Mul(kids) => Some((kids.clone(), *id)),
            _ => None,
        })
        .collect();
    let mut budget = ctx.oracle_budget;
    for i in 0..muls.len() {
        for j in (i + 1)..muls.len() {
            if budget == 0 {
                return unions;
            }
            let (ref ka, ia) = muls[i];
            let (ref kb, ib) = muls[j];
            if eg.same(ia, ib) || ctx.already_tried(Rewrite::ProductEquiv, ia, ib) {
                continue;
            }
            // Mark before the prefilter: a pair that fails it now can
            // only start passing after a union, which re-keys the pair
            // under fresh canonical ids anyway.
            ctx.mark_tried(Rewrite::ProductEquiv, ia, ib);
            if rel_signature(eg, ka) != rel_signature(eg, kb) {
                continue;
            }
            budget -= 1;
            ctx.matches += 1;
            // Extract both products under ONE naming environment so
            // shared bound levels resolve to shared names.
            let mut env = NameEnv::new(ctx.gen);
            let (Some(ea), Some(eb)) = (
                eg.extract_uexpr(ctx.best, ia, &mut env),
                eg.extract_uexpr(ctx.best, ib, &mut env),
            ) else {
                continue;
            };
            let key = RewriteCtx::pair_key(Rewrite::ProductEquiv, ia, ib);
            let (fa, fb) = pair_fingerprint(ctx.memo_interner, &ea, &eb);
            if let Some(prev) = ctx.oracle_memo.get(&key) {
                if !prev.proved && prev.lhs == fa && prev.rhs == fb {
                    // Same question, already answered "no": skip the
                    // oracle. The iteration budget was still charged, so
                    // the schedule of pairs examined per round is
                    // unchanged.
                    telemetry::count("egraph.oracle_memo_hits", 1);
                    continue;
                }
            }
            ctx.oracle_calls += 1;
            let _oracle = telemetry::span("egraph.oracle");
            telemetry::count("egraph.oracle_calls", 1);
            let (Some((atoms_a, _)), Some((atoms_b, _))) = (
                as_product_atoms(&ea, ctx.gen),
                as_product_atoms(&eb, ctx.gen),
            ) else {
                continue;
            };
            let mut oracle_trace = Trace::new();
            let mut octx = Ctx::new(ctx.gen, &mut oracle_trace);
            let proved = equiv::product_equiv(&atoms_a, &atoms_b, &[], &mut octx);
            ctx.oracle_memo.insert(
                key,
                OracleVerdict {
                    lhs: fa,
                    rhs: fb,
                    proved,
                },
            );
            if proved
                && eg.union_detailed(
                    ia,
                    ib,
                    Lemma::Absorption,
                    "products equal by mutual entailment (Lemma 5.3)",
                    oracle_trace.steps().to_vec(),
                )
            {
                unions += 1;
            }
        }
    }
    unions
}

/// `(A ↔ B) ⇒ (‖A‖ = ‖B‖)`: for pairs of squash classes, the deductive
/// bi-implication prover decides whether the bodies are inter-derivable;
/// its witness searches and case splits are the `ExistsWitness`/
/// `CaseSplit` steps of the attached sub-trace.
fn apply_prop_ext(eg: &mut EGraph, ctx: &mut RewriteCtx<'_>) -> usize {
    let mut unions = 0;
    let squashes: Vec<(Id, Id)> = ctx
        .snapshot
        .iter()
        .filter_map(|(n, id)| match n {
            ENode::Squash(x) => Some((*x, *id)),
            _ => None,
        })
        .collect();
    let mut budget = ctx.oracle_budget;
    for i in 0..squashes.len() {
        for j in (i + 1)..squashes.len() {
            if budget == 0 {
                return unions;
            }
            let (ba, ia) = squashes[i];
            let (bb, ib) = squashes[j];
            if eg.same(ia, ib) || ctx.already_tried(Rewrite::PropExt, ia, ib) {
                continue;
            }
            // Mark before extracting: pairs that fail the prefilter are
            // not re-extracted every iteration (a union re-keys the
            // pair under fresh canonical ids, retrying naturally).
            ctx.mark_tried(Rewrite::PropExt, ia, ib);
            // Prefilter: squashed bodies must mention the same relation
            // symbols to stand a chance of bi-implication.
            let mut env = NameEnv::new(ctx.gen);
            let (Some(ea), Some(eb)) = (
                eg.extract_uexpr(ctx.best, ba, &mut env),
                eg.extract_uexpr(ctx.best, bb, &mut env),
            ) else {
                continue;
            };
            if rel_names(&ea) != rel_names(&eb) {
                continue;
            }
            budget -= 1;
            ctx.matches += 1;
            let key = RewriteCtx::pair_key(Rewrite::PropExt, ia, ib);
            let (fa, fb) = pair_fingerprint(ctx.memo_interner, &ea, &eb);
            if let Some(prev) = ctx.oracle_memo.get(&key) {
                if !prev.proved && prev.lhs == fa && prev.rhs == fb {
                    telemetry::count("egraph.oracle_memo_hits", 1);
                    continue;
                }
            }
            ctx.oracle_calls += 1;
            let _oracle = telemetry::span("egraph.oracle");
            telemetry::count("egraph.oracle_calls", 1);
            let mut oracle_trace = Trace::new();
            let na = normalize(&ea, ctx.gen, &mut oracle_trace);
            let nb = normalize(&eb, ctx.gen, &mut oracle_trace);
            let mut octx = Ctx::new(ctx.gen, &mut oracle_trace);
            let proved = uninomial::deduce::prove_iff(&na, &nb, &[], &mut octx);
            ctx.oracle_memo.insert(
                key,
                OracleVerdict {
                    lhs: fa,
                    rhs: fb,
                    proved,
                },
            );
            if proved
                && eg.union_detailed(
                    ia,
                    ib,
                    Lemma::PropExt,
                    "squash bodies are bi-implicable",
                    oracle_trace.steps().to_vec(),
                )
            {
                unions += 1;
            }
        }
    }
    unions
}

/// The set of relation symbols an expression mentions.
fn rel_names(e: &UExpr) -> std::collections::BTreeSet<String> {
    fn go(e: &UExpr, out: &mut std::collections::BTreeSet<String>) {
        match e {
            UExpr::Rel(r, _) => {
                out.insert(r.clone());
            }
            UExpr::Add(a, b) | UExpr::Mul(a, b) => {
                go(a, out);
                go(b, out);
            }
            UExpr::Not(x) | UExpr::Squash(x) => go(x, out),
            UExpr::Sum(_, b) => go(b, out),
            UExpr::Zero | UExpr::One | UExpr::Eq(_, _) | UExpr::Pred(_, _) => {}
        }
    }
    let mut out = std::collections::BTreeSet::new();
    go(e, &mut out);
    out
}
