//! Proof-producing union-find.
//!
//! The classic disjoint-set structure with path compression for `find`,
//! extended with the *proof forest* of Nieuwenhuis and Oliveras: every
//! [`union`](UnionFind::union) records a justification edge between the
//! two ids it was asked to merge (not their representatives), in a
//! second, never-compressed parent structure. [`explain`]
//! (UnionFind::explain) later recovers, for any two equivalent ids, the
//! chain of justifications that merged them — the skeleton of an
//! auditable proof.
//!
//! Justifications carry the trusted [`Lemma`] that licensed the union,
//! so a saturation proof extracted from the forest references the same
//! axiom catalog as the normalizer's traces.

use std::fmt;
use uninomial::lemmas::Lemma;

/// An e-class id. Only meaningful relative to the [`UnionFind`] /
/// e-graph that issued it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub(crate) u32);

impl Id {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Why two e-classes were merged.
#[derive(Clone, Debug)]
pub enum Justification {
    /// A rewrite compiled from the named trusted lemma.
    Rule {
        /// The axiom that licensed the union.
        lemma: Lemma,
        /// Human-readable instance note.
        note: String,
        /// Lemma steps recorded by the oracle that discharged the
        /// rewrite's side condition (e.g. the deductive entailment
        /// behind an absorption), keeping the full proof auditable.
        substeps: Vec<(Lemma, String)>,
    },
    /// Congruence: the merged classes contain nodes with the same
    /// operator whose children are pairwise equal.
    Congruence {
        /// Operator name (for the proof note).
        op: &'static str,
        /// Pairwise-equal child ids, for recursive explanation.
        children: Vec<(Id, Id)>,
    },
}

/// Union-find with a proof forest.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<Id>,
    rank: Vec<u32>,
    /// Proof forest: uncompressed justification edges.
    proof: Vec<Option<(Id, Justification)>>,
}

impl UnionFind {
    /// An empty structure.
    pub fn new() -> UnionFind {
        UnionFind::default()
    }

    /// Number of ids issued.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no ids have been issued.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Creates a fresh singleton class.
    pub fn make_set(&mut self) -> Id {
        let id = Id(u32::try_from(self.parent.len()).expect("e-class id overflow"));
        self.parent.push(id);
        self.rank.push(0);
        self.proof.push(None);
        id
    }

    /// Canonical representative of `id`, with path compression.
    pub fn find(&mut self, id: Id) -> Id {
        let mut root = id;
        while self.parent[root.index()] != root {
            root = self.parent[root.index()];
        }
        // Compress.
        let mut cur = id;
        while self.parent[cur.index()] != root {
            let next = self.parent[cur.index()];
            self.parent[cur.index()] = root;
            cur = next;
        }
        root
    }

    /// Canonical representative without mutation (no compression).
    pub fn find_immutable(&self, id: Id) -> Id {
        let mut root = id;
        while self.parent[root.index()] != root {
            root = self.parent[root.index()];
        }
        root
    }

    /// Whether two ids are in the same class.
    pub fn same(&mut self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the classes of `a` and `b`, recording `just` in the proof
    /// forest. Returns `(winner, loser)` representatives — `None` if the
    /// ids were already equal (nothing recorded).
    pub fn union(&mut self, a: Id, b: Id, just: Justification) -> Option<(Id, Id)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        // Proof forest: re-root a's justification tree at `a`, then hang
        // it below `b`. Edges always connect the ids the caller named,
        // which is what makes the recorded justification meaningful.
        self.reroot_proof(a);
        self.proof[a.index()] = Some((b, just));
        // Union by rank on the compressed structure.
        let (winner, loser) = if self.rank[ra.index()] >= self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser.index()] = winner;
        if self.rank[ra.index()] == self.rank[rb.index()] {
            self.rank[winner.index()] += 1;
        }
        Some((winner, loser))
    }

    /// Reverses the proof-forest path from `id` to its forest root, so
    /// that `id` becomes the root of its justification tree.
    fn reroot_proof(&mut self, id: Id) {
        let mut prev: Option<(Id, Justification)> = None;
        let mut cur = id;
        loop {
            let next = self.proof[cur.index()].take();
            if let Some(p) = prev {
                self.proof[cur.index()] = Some(p);
            }
            match next {
                None => break,
                Some((parent, just)) => {
                    prev = Some((cur, just));
                    cur = parent;
                }
            }
        }
    }

    /// The path of justification edges from `a` to `b`, if they are
    /// equivalent. Each element is the justification of one union on the
    /// path, in order from `a` to `b`.
    pub fn explain(&self, a: Id, b: Id) -> Option<Vec<&Justification>> {
        if a == b {
            return Some(Vec::new());
        }
        // Walk both ids to their proof-forest roots, then drop the
        // common suffix of the two paths.
        let path = |mut id: Id| -> Vec<Id> {
            let mut out = vec![id];
            while let Some((next, _)) = &self.proof[id.index()] {
                id = *next;
                out.push(id);
            }
            out
        };
        let pa = path(a);
        let pb = path(b);
        if pa.last() != pb.last() {
            return None; // different forests: not equivalent
        }
        let mut ia = pa.len();
        let mut ib = pb.len();
        while ia > 0 && ib > 0 && pa[ia - 1] == pb[ib - 1] {
            ia -= 1;
            ib -= 1;
        }
        // Edges a → lca, then lca → b (reverse direction of pb's edges).
        let mut out = Vec::new();
        for node in pa.iter().take(ia) {
            let (_, just) = self.proof[node.index()].as_ref().expect("edge on path");
            out.push(just);
        }
        for node in pb.iter().take(ib).rev() {
            let (_, just) = self.proof[node.index()].as_ref().expect("edge on path");
            out.push(just);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(note: &str) -> Justification {
        Justification::Rule {
            lemma: Lemma::AddAcu,
            note: note.to_owned(),
            substeps: Vec::new(),
        }
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let c = uf.make_set();
        assert!(!uf.same(a, b));
        uf.union(a, b, rule("ab"));
        assert!(uf.same(a, b));
        assert!(!uf.same(a, c));
        uf.union(b, c, rule("bc"));
        assert!(uf.same(a, c));
        assert_eq!(uf.len(), 3);
    }

    #[test]
    fn explain_collects_path_justifications() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..5).map(|_| uf.make_set()).collect();
        uf.union(ids[0], ids[1], rule("01"));
        uf.union(ids[2], ids[3], rule("23"));
        uf.union(ids[1], ids[2], rule("12"));
        let path = uf.explain(ids[0], ids[3]).expect("equivalent");
        let notes: Vec<&str> = path
            .iter()
            .map(|j| match j {
                Justification::Rule { note, .. } => note.as_str(),
                Justification::Congruence { .. } => "congruence",
            })
            .collect();
        assert_eq!(notes, vec!["01", "12", "23"]);
        assert!(uf.explain(ids[0], ids[4]).is_none(), "not equivalent");
    }

    #[test]
    fn explain_is_symmetric_in_reachability() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        uf.union(a, b, rule("ab"));
        assert_eq!(uf.explain(a, b).unwrap().len(), 1);
        assert_eq!(uf.explain(b, a).unwrap().len(), 1);
        assert_eq!(uf.explain(a, a).unwrap().len(), 0);
    }
}
