//! Cost-based extraction: per-class best-cost dynamic programming over
//! the e-graph, generic in the cost function.
//!
//! The original extraction pass hard-coded tree size (the right choice
//! for *explanations*, where the smallest witness reads best). A query
//! optimizer needs the *cheapest* representative instead, under a
//! statistics-driven model — so the pass is generalized: a
//! [`CostFunction`] assigns each e-node a cost from its children's
//! costs, and [`best_costs`] computes, for every class, the minimum-cost
//! node by fixpoint iteration. [`TreeSize`] recovers the old behavior
//! exactly ([`crate::EGraph::extraction`] delegates to it).
//!
//! Costs only need [`PartialOrd`] — `f64`-based cost structs compare
//! with `total_cmp` in their own `PartialOrd` impls. Because a
//! non-monotone cost function combined with cyclic classes could lower
//! entries forever, the fixpoint is capped at one pass per class plus
//! one; an acyclic dependency structure (every extractable term) settles
//! well within the cap, and callers that must guarantee "never worse
//! than the input" compare realized costs of the extracted tree
//! afterwards.

use crate::lang::ENode;
use crate::unionfind::Id;
use std::collections::HashMap;
use uninomial::syntax::{Term, UExpr};

/// A cost assignment for e-nodes: the cost of a node given the best
/// costs of its child classes (in [`ENode::children`] order).
pub trait CostFunction {
    /// The cost values being minimized.
    type Cost: PartialOrd + Clone;

    /// Cost of `node` when its children cost `children`.
    fn cost(&self, node: &ENode, children: &[Self::Cost]) -> Self::Cost;
}

/// The original minimum-tree-size objective: `1 +` the sum of child
/// sizes. Used for explanation extraction.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeSize;

impl CostFunction for TreeSize {
    type Cost = usize;

    fn cost(&self, _node: &ENode, children: &[usize]) -> usize {
        children
            .iter()
            .fold(1usize, |acc, &c| acc.saturating_add(c))
    }
}

/// Computes the best-cost table over a node snapshot: canonical class id
/// → (cost, best node). Classes reachable only through cycles are
/// absent.
pub fn best_costs<C: CostFunction>(
    snapshot: &[(ENode, Id)],
    cost: &C,
) -> HashMap<Id, (C::Cost, ENode)> {
    let mut best: HashMap<Id, (C::Cost, ENode)> = HashMap::new();
    // Cap: an acyclic class DAG settles in at most one pass per class.
    let max_rounds = snapshot.len() + 1;
    for _ in 0..max_rounds {
        let mut changed = false;
        for (node, id) in snapshot {
            let mut kids = Vec::new();
            let mut ok = true;
            for c in node.children() {
                match best.get(&c) {
                    Some((k, _)) => kids.push(k.clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let candidate = cost.cost(node, &kids);
            let better = match best.get(id) {
                None => true,
                Some((current, _)) => {
                    candidate.partial_cmp(current) == Some(std::cmp::Ordering::Less)
                }
            };
            if better {
                best.insert(*id, (candidate, node.clone()));
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    best
}

/// Costs a plain named [`UExpr`] with the same [`CostFunction`] used for
/// extraction, flattening `+`/`×` chains into the n-ary nodes the
/// e-graph would hold — so a tree and its seeded image cost the same.
/// Child ids inside the constructed nodes are placeholders; cost
/// functions read child costs from the slice, never from ids.
pub fn cost_uexpr<C: CostFunction>(e: &UExpr, cost: &C) -> C::Cost {
    let dummy = Id(0);
    match e {
        UExpr::Zero => cost.cost(&ENode::Zero, &[]),
        UExpr::One => cost.cost(&ENode::One, &[]),
        UExpr::Add(_, _) => {
            let mut kids = Vec::new();
            flatten_add(e, cost, &mut kids);
            let node = ENode::Add(vec![dummy; kids.len()]);
            cost.cost(&node, &kids)
        }
        UExpr::Mul(_, _) => {
            let mut kids = Vec::new();
            flatten_mul(e, cost, &mut kids);
            let node = ENode::Mul(vec![dummy; kids.len()]);
            cost.cost(&node, &kids)
        }
        UExpr::Not(x) => {
            let k = cost_uexpr(x, cost);
            cost.cost(&ENode::Not(dummy), &[k])
        }
        UExpr::Squash(x) => {
            let k = cost_uexpr(x, cost);
            cost.cost(&ENode::Squash(dummy), &[k])
        }
        UExpr::Sum(v, body) => {
            let k = cost_uexpr(body, cost);
            cost.cost(&ENode::Sum(v.schema.clone(), dummy), &[k])
        }
        UExpr::Eq(a, b) => {
            let ka = cost_term(a, cost);
            let kb = cost_term(b, cost);
            cost.cost(&ENode::Eq(dummy, dummy), &[ka, kb])
        }
        UExpr::Rel(r, t) => {
            let k = cost_term(t, cost);
            cost.cost(&ENode::Rel(r.clone(), dummy), &[k])
        }
        UExpr::Pred(p, t) => {
            let k = cost_term(t, cost);
            cost.cost(&ENode::Pred(p.clone(), dummy), &[k])
        }
    }
}

fn flatten_add<C: CostFunction>(e: &UExpr, cost: &C, out: &mut Vec<C::Cost>) {
    match e {
        UExpr::Add(a, b) => {
            flatten_add(a, cost, out);
            flatten_add(b, cost, out);
        }
        other => out.push(cost_uexpr(other, cost)),
    }
}

fn flatten_mul<C: CostFunction>(e: &UExpr, cost: &C, out: &mut Vec<C::Cost>) {
    match e {
        UExpr::Mul(a, b) => {
            flatten_mul(a, cost, out);
            flatten_mul(b, cost, out);
        }
        other => out.push(cost_uexpr(other, cost)),
    }
}

/// Term-sort counterpart of [`cost_uexpr`].
pub fn cost_term<C: CostFunction>(t: &Term, cost: &C) -> C::Cost {
    let dummy = Id(0);
    match t {
        Term::Var(v) => cost.cost(&ENode::FreeVar(v.clone()), &[]),
        Term::Unit => cost.cost(&ENode::Unit, &[]),
        Term::Const(c) => cost.cost(&ENode::Const(c.clone()), &[]),
        Term::Pair(a, b) => {
            let ka = cost_term(a, cost);
            let kb = cost_term(b, cost);
            cost.cost(&ENode::Pair(dummy, dummy), &[ka, kb])
        }
        Term::Fst(x) => {
            let k = cost_term(x, cost);
            cost.cost(&ENode::Fst(dummy), &[k])
        }
        Term::Snd(x) => {
            let k = cost_term(x, cost);
            cost.cost(&ENode::Snd(dummy), &[k])
        }
        Term::Fn(f, args) => {
            let kids: Vec<C::Cost> = args.iter().map(|a| cost_term(a, cost)).collect();
            cost.cost(&ENode::Fn(f.clone(), vec![dummy; kids.len()]), &kids)
        }
        Term::Agg(name, v, body) => {
            let k = cost_uexpr(body, cost);
            cost.cost(&ENode::Agg(name.clone(), v.schema.clone(), dummy), &[k])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EGraph;
    use relalg::Schema;
    use uninomial::syntax::VarGen;

    #[test]
    fn tree_size_matches_legacy_extraction() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let r = eg.add(ENode::Rel("R".into(), u));
        let s = eg.add(ENode::Rel("S".into(), u));
        let rs = eg.add(ENode::Mul(vec![r, s]));
        let snapshot = eg.node_snapshot();
        let best = best_costs(&snapshot, &TreeSize);
        assert_eq!(best.get(&rs).map(|(c, _)| *c), Some(5));
        let legacy = eg.extraction();
        for (id, (c, _)) in &legacy {
            assert_eq!(best.get(id).map(|(k, _)| *k), Some(*c));
        }
    }

    #[test]
    fn cost_uexpr_flattens_like_seeding() {
        // ((a + b) + c) costs as one 3-ary Add under TreeSize: 1 + 3·1.
        let mut gen = VarGen::new();
        let t = gen.fresh(Schema::leaf(relalg::BaseType::Int));
        let atom = |n: &str| UExpr::rel(n, Term::var(&t));
        let e = UExpr::add(UExpr::add(atom("A"), atom("B")), atom("C"));
        // Each Rel costs 1 (node) + 1 (var) = 2; Add = 1 + 3·2 = 7.
        assert_eq!(cost_uexpr(&e, &TreeSize), 7);
    }

    /// A deliberately perverse cost (smaller for wider nodes) still
    /// terminates thanks to the round cap.
    struct Perverse;
    impl CostFunction for Perverse {
        type Cost = f64;
        fn cost(&self, _n: &ENode, children: &[f64]) -> f64 {
            0.9 * children.iter().sum::<f64>().max(1.0)
        }
    }

    #[test]
    fn non_monotone_costs_terminate() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let r = eg.add(ENode::Rel("R".into(), u));
        let sq = eg.add(ENode::Squash(r));
        let snapshot = eg.node_snapshot();
        let best = best_costs(&snapshot, &Perverse);
        assert!(best.contains_key(&sq));
    }
}
