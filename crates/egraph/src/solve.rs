//! The saturation scheduler: iterate match → apply → rebuild under an
//! iteration/node budget until the goal classes merge, the graph
//! saturates, or the budget runs out.

use crate::graph::EGraph;
use crate::lang::{BinderStack, ENode};
use crate::mined::MinedRule;
use crate::rewrite::{default_rewrites, OracleMemo, Rewrite, RewriteCtx};
use crate::unionfind::Id;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use uninomial::normalize::Trace;
use uninomial::syntax::VarGen;
use uninomial::{Interner, UExpr, UExprId};

/// Saturation budget. Defaults are sized so that every Fig. 8 catalog
/// rule closes comfortably while runaway searches stay bounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum saturation iterations (match/apply/rebuild rounds).
    pub max_iters: usize,
    /// Maximum distinct e-nodes before the search is cut off.
    pub max_nodes: usize,
    /// Maximum oracle invocations (deductive/equational side-condition
    /// checks) per iteration.
    pub oracle_calls_per_iter: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_iters: 24,
            max_nodes: 10_000,
            oracle_calls_per_iter: 64,
        }
    }
}

impl Budget {
    /// A budget with explicit iteration and node caps.
    pub fn new(max_iters: usize, max_nodes: usize) -> Budget {
        Budget {
            max_iters,
            max_nodes,
            ..Budget::default()
        }
    }

    /// Replaces the per-iteration oracle-call cap (the third budget
    /// knob: side-condition checks are the expensive part of a round).
    pub fn with_oracle_calls(mut self, calls: usize) -> Budget {
        self.oracle_calls_per_iter = calls;
        self
    }
}

/// Why the saturation loop stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The goal classes merged: the equality is proved.
    Proved,
    /// A full iteration produced no new nodes or unions: the rewrite
    /// set is exhausted and the goal classes remain distinct.
    Saturated,
    /// The iteration budget ran out first.
    IterBudget,
    /// The node budget ran out first.
    NodeBudget,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Proved => write!(f, "proved"),
            Outcome::Saturated => write!(f, "saturated without merging"),
            Outcome::IterBudget => write!(f, "iteration budget exhausted"),
            Outcome::NodeBudget => write!(f, "node budget exhausted"),
        }
    }
}

/// Search statistics, reported alongside the outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Iterations run.
    pub iters: usize,
    /// Distinct e-nodes at stop time.
    pub nodes: usize,
    /// Unions performed (rewrites + congruence + theory collapses).
    pub unions: usize,
}

/// The equality-saturation solver: an e-graph plus the compiled default
/// rewrite set and a budget. Owned data only — `Send`, so the parallel
/// batch engine runs one solver per worker.
#[derive(Debug)]
pub struct Solver {
    budget: Budget,
    eg: EGraph,
    gen: VarGen,
    rewrites: Vec<Rewrite>,
    /// Certified mined rules applied after the built-in rewrites each
    /// iteration. Empty by default — an empty table leaves the search
    /// bit-identical to a solver without mined-rule support. `Arc` so a
    /// daemon's workers share one mined catalog without copying.
    mined: Arc<Vec<MinedRule>>,
    attempted: HashSet<(Rewrite, Id, Id)>,
    /// Per-(rule, class) application dedup for mined rules, cleared on
    /// progress exactly like `attempted`.
    mined_attempted: HashSet<(usize, Id)>,
    /// Oracle verdicts memoized across iterations (never cleared on
    /// progress — entries carry input fingerprints that decide their own
    /// validity; see [`OracleMemo`]).
    oracle_memo: OracleMemo,
    /// Hash-consing interner backing the memo's fingerprints.
    memo_interner: Interner,
}

impl Solver {
    /// A solver with the full lemma-compiled rewrite set.
    pub fn new(budget: Budget) -> Solver {
        Solver {
            budget,
            eg: EGraph::new(),
            gen: VarGen::new(),
            rewrites: default_rewrites(),
            mined: Arc::new(Vec::new()),
            attempted: HashSet::new(),
            mined_attempted: HashSet::new(),
            oracle_memo: OracleMemo::new(),
            memo_interner: Interner::new(),
        }
    }

    /// The underlying e-graph.
    pub fn egraph(&mut self) -> &mut EGraph {
        &mut self.eg
    }

    /// The solver's configured (per-run) budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Installs a mined-rule catalog: certified rule schemas applied
    /// after the built-in rewrites each iteration, attributed under
    /// `mined:`-prefixed profile labels. Passing an empty catalog
    /// restores the default behavior exactly.
    pub fn set_mined_rules(&mut self, rules: Arc<Vec<MinedRule>>) {
        self.mined = rules;
        self.mined_attempted.clear();
    }

    /// The installed mined-rule catalog (empty by default).
    pub fn mined_rules(&self) -> &Arc<Vec<MinedRule>> {
        &self.mined
    }

    /// Reserves fresh-variable ids above `id` so extraction-generated
    /// names never collide with names already in the seeds.
    pub fn reserve_names_above(&mut self, id: u32) {
        self.gen.reserve_above(id);
    }

    /// Seeds an interned expression (no boxed-tree re-hashing: the
    /// interner's id-DAG is walked directly). Returns the seed class.
    pub fn seed_interned(&mut self, interner: &Interner, id: UExprId) -> Id {
        let eg = &mut self.eg;
        let mut stack = BinderStack::new();
        crate::lang::seed_uexpr(interner, id, &mut stack, &mut |n| eg.add(n))
    }

    /// Convenience: interns a boxed expression and seeds it.
    pub fn seed_expr(&mut self, e: &UExpr) -> Id {
        self.gen.reserve_above(e.max_var_id());
        let mut interner = Interner::new();
        let id = interner.intern(e);
        self.seed_interned(&interner, id)
    }

    /// Runs the saturation loop until `l = r` is proved or the search
    /// gives out.
    pub fn run(&mut self, l: Id, r: Id) -> (Outcome, Stats) {
        self.run_with_budget(Some((l, r)), self.budget)
    }

    /// Runs the saturation loop with no goal: saturate the graph under
    /// the rewrite set until nothing changes or the budget runs out.
    /// Never returns [`Outcome::Proved`] — this is the optimizer's entry
    /// point, where the payoff is the enriched class structure that
    /// [`Solver::extract_best`] mines, not a merge of two seeds.
    pub fn saturate(&mut self) -> (Outcome, Stats) {
        self.run_with_budget(None, self.budget)
    }

    /// Resumes the saturation loop under an *explicit* budget,
    /// continuing from the graph's current state — seeds added since the
    /// last run are picked up by the next match phase and saturation
    /// proceeds incrementally instead of restarting. The iteration count
    /// in the returned [`Stats`] covers this call only, which is what
    /// lets a persistent [`Session`](crate::session::Session) do
    /// batch-level budget accounting across many resumes.
    pub fn run_with_budget(&mut self, goal: Option<(Id, Id)>, budget: Budget) -> (Outcome, Stats) {
        let _run = telemetry::span("egraph.run");
        let mut stats = Stats::default();
        loop {
            {
                let _s = telemetry::span("egraph.rebuild");
                self.eg.rebuild();
            }
            stats.nodes = self.eg.node_count();
            stats.unions = self.eg.union_count();
            if let Some((l, r)) = goal {
                if self.eg.same(l, r) {
                    return (Outcome::Proved, stats);
                }
            }
            if stats.iters >= budget.max_iters {
                return (Outcome::IterBudget, stats);
            }
            if stats.nodes >= budget.max_nodes {
                return (Outcome::NodeBudget, stats);
            }
            stats.iters += 1;
            let nodes_before = self.eg.node_count();
            let unions_before = self.eg.union_count();
            let snapshot = self.eg.node_snapshot();
            let best = self.eg.extraction();
            let props = self.prop_classes(&snapshot);
            let rewrites = self.rewrites.clone();
            let mut ctx = RewriteCtx {
                gen: &mut self.gen,
                snapshot: &snapshot,
                best: &best,
                props: &props,
                attempted: &mut self.attempted,
                oracle_budget: budget.oracle_calls_per_iter,
                matches: 0,
                oracle_calls: 0,
                oracle_memo: &mut self.oracle_memo,
                memo_interner: &mut self.memo_interner,
            };
            let profiling = telemetry::profiling_enabled();
            {
                // Matching and applying are fused in this rewrite
                // representation: each `Rewrite::apply` scans the
                // snapshot for its pattern and installs the result.
                let _s = telemetry::span("egraph.match_apply");
                for rw in rewrites {
                    if profiling {
                        // Node/union counts are monotone, so the deltas
                        // around each pass — plus the rebuild delta below
                        // — telescope exactly to the flat
                        // `egraph.nodes_added`/`egraph.unions` counters.
                        let t0 = telemetry::clock::now_ns();
                        let n0 = self.eg.node_count();
                        let u0 = self.eg.union_count();
                        let m0 = ctx.matches;
                        let o0 = ctx.oracle_calls;
                        rw.apply(&mut self.eg, &mut ctx);
                        let label = rw.name();
                        telemetry::profile_observe(
                            label,
                            "apply_ns",
                            telemetry::clock::now_ns().saturating_sub(t0),
                        );
                        telemetry::profile_count(label, "matches", (ctx.matches - m0) as u64);
                        telemetry::profile_count(
                            label,
                            "nodes_added",
                            (self.eg.node_count() - n0) as u64,
                        );
                        telemetry::profile_count(
                            label,
                            "unions",
                            (self.eg.union_count() - u0) as u64,
                        );
                        telemetry::profile_count(
                            label,
                            "oracle_calls",
                            (ctx.oracle_calls - o0) as u64,
                        );
                    } else {
                        rw.apply(&mut self.eg, &mut ctx);
                    }
                    if self.eg.node_count() >= budget.max_nodes {
                        break;
                    }
                }
            }
            if !self.mined.is_empty() && self.eg.node_count() < budget.max_nodes {
                // Mined rules run after the built-ins, one pass each,
                // with their own per-class dedup. Attribution mirrors
                // the built-in block, under `mined:`-prefixed labels so
                // mined rows can never collide with catalog rule rows.
                let _s = telemetry::span("egraph.mined");
                let mined = Arc::clone(&self.mined);
                for (idx, rule) in mined.iter().enumerate() {
                    if profiling {
                        let t0 = telemetry::clock::now_ns();
                        let n0 = self.eg.node_count();
                        let u0 = self.eg.union_count();
                        let m0 = ctx.matches;
                        crate::mined::apply_rule(
                            &mut self.eg,
                            &mut ctx,
                            idx,
                            rule,
                            &mut self.mined_attempted,
                        );
                        let label = rule.label();
                        telemetry::profile_observe(
                            &label,
                            "apply_ns",
                            telemetry::clock::now_ns().saturating_sub(t0),
                        );
                        telemetry::profile_count(&label, "matches", (ctx.matches - m0) as u64);
                        telemetry::profile_count(
                            &label,
                            "nodes_added",
                            (self.eg.node_count() - n0) as u64,
                        );
                        telemetry::profile_count(
                            &label,
                            "unions",
                            (self.eg.union_count() - u0) as u64,
                        );
                    } else {
                        crate::mined::apply_rule(
                            &mut self.eg,
                            &mut ctx,
                            idx,
                            rule,
                            &mut self.mined_attempted,
                        );
                    }
                    if self.eg.node_count() >= budget.max_nodes {
                        break;
                    }
                }
            }
            let nodes_mid = self.eg.node_count();
            let unions_mid = self.eg.union_count();
            let rebuild_t0 = profiling.then(telemetry::clock::now_ns);
            {
                let _s = telemetry::span("egraph.rebuild");
                self.eg.rebuild();
            }
            if profiling {
                // Congruence restoration gets its own attribution row so
                // the per-label sums still telescope to the aggregates.
                // With deferred rebuilds, this is where the batched
                // repair work actually runs — charge its wall time here,
                // not to whichever rewrite happened to union last.
                if let Some(t0) = rebuild_t0 {
                    telemetry::profile_observe(
                        "congruence",
                        "apply_ns",
                        telemetry::clock::now_ns().saturating_sub(t0),
                    );
                }
                telemetry::profile_count(
                    "congruence",
                    "nodes_added",
                    (self.eg.node_count() - nodes_mid) as u64,
                );
                telemetry::profile_count(
                    "congruence",
                    "unions",
                    (self.eg.union_count() - unions_mid) as u64,
                );
            }
            telemetry::count("egraph.iters", 1);
            telemetry::count(
                "egraph.nodes_added",
                self.eg.node_count().saturating_sub(nodes_before) as u64,
            );
            telemetry::count(
                "egraph.unions",
                self.eg.union_count().saturating_sub(unions_before) as u64,
            );
            // Growth timeline: one counter sample per iteration, drawn
            // as value-over-time tracks by Perfetto (no-op unless both
            // tracing and profiling are on).
            telemetry::counter_event("egraph.classes", self.eg.class_count() as u64);
            telemetry::counter_event("egraph.nodes", self.eg.node_count() as u64);
            telemetry::counter_event("egraph.memo", self.eg.memo_size() as u64);
            if self.eg.union_count() != unions_before {
                // Progress can change a conditional rewrite's verdict
                // even for pairs whose canonical ids survived (a class
                // may have gained nodes/hypotheses), so failed attempts
                // become retryable. Dedup only matters within stalled
                // rounds, where the set persists and drives termination.
                self.attempted.clear();
                self.mined_attempted.clear();
            }
            if self.eg.node_count() == nodes_before && self.eg.union_count() == unions_before {
                stats.nodes = self.eg.node_count();
                stats.unions = self.eg.union_count();
                let outcome = match goal {
                    Some((l, r)) if self.eg.same(l, r) => Outcome::Proved,
                    _ => Outcome::Saturated,
                };
                return (outcome, stats);
            }
        }
    }

    /// Extracts the cheapest equivalent [`UExpr`] of a class under the
    /// given cost function, together with its table cost. `None` when
    /// the class has no finite-cost representative.
    pub fn extract_best<C: crate::extract::CostFunction>(
        &mut self,
        id: Id,
        cost: &C,
    ) -> Option<(C::Cost, UExpr)> {
        let _span = telemetry::span("egraph.extract");
        let best = self.eg.extraction_with(cost);
        let canon = self.eg.find(id);
        let key = if best.contains_key(&canon) { canon } else { id };
        let recorded = best.get(&key)?.0.clone();
        let Solver { eg, gen, .. } = self;
        let mut env = crate::lang::NameEnv::new(gen);
        let expr = eg.extract_uexpr(&best, id, &mut env)?;
        Some((recorded, expr))
    }

    /// Appends the lemma chain that merged `a` and `b` to `trace`.
    pub fn explain_into(&mut self, a: Id, b: Id, trace: &mut Trace) -> bool {
        self.eg.explain_into(a, b, trace)
    }

    /// Classes known to denote propositions (squash types): fixpoint of
    /// "node is a `Pred`/`Eq`/`Not`/`Squash`/`0`/`1`, or a `×` of
    /// propositional classes".
    fn prop_classes(&mut self, snapshot: &[(ENode, Id)]) -> HashSet<Id> {
        let mut props: HashSet<Id> = HashSet::new();
        loop {
            let mut changed = false;
            for (node, id) in snapshot {
                if props.contains(id) {
                    continue;
                }
                let is_prop = match node {
                    ENode::Zero
                    | ENode::One
                    | ENode::Pred(_, _)
                    | ENode::Eq(_, _)
                    | ENode::Not(_)
                    | ENode::Squash(_) => true,
                    ENode::Mul(kids) => kids.iter().all(|k| props.contains(k)),
                    _ => false,
                };
                if is_prop {
                    props.insert(*id);
                    changed = true;
                }
            }
            if !changed {
                return props;
            }
        }
    }
}
