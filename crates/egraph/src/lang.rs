//! The e-node language: a locally nameless (de Bruijn) rendering of the
//! UniNomial term language, flattened over e-class ids.
//!
//! Named bound variables are the enemy of equality saturation: two
//! α-equivalent expressions must land in the same e-class, but named
//! binders make them structurally different. Conversion therefore
//! replaces every bound-variable occurrence by a [`ENode::Bound`] index
//! (distance to its binder), so α-equivalent inputs hash-cons to the
//! *same* e-nodes and merge for free — the e-graph's rendering of
//! [`Lemma::AlphaRename`]. Free variables stay named ([`ENode::FreeVar`])
//! and binders keep only their schema.
//!
//! `+` and `×` are *n-ary* nodes whose children are kept sorted by
//! canonical class id. Associativity and commutativity
//! ([`Lemma::AddAcu`], [`Lemma::MulAcu`]) are thereby structural rather
//! than searched-for: any two reorderings or reassociations of the same
//! factors canonicalize to one node. Duplicate children are *kept* —
//! UniNomial is a bag algebra, `R(t) × R(t) ≠ R(t)`.
//!
//! Seeding reads interned [`UExprId`]/[`TermId`] nodes straight out of a
//! [`uninomial::Interner`] arena, walking the id-DAG rather than a boxed
//! tree.
//!
//! [`Lemma::AlphaRename`]: uninomial::lemmas::Lemma::AlphaRename
//! [`Lemma::AddAcu`]: uninomial::lemmas::Lemma::AddAcu
//! [`Lemma::MulAcu`]: uninomial::lemmas::Lemma::MulAcu

use crate::unionfind::Id;
use relalg::{Schema, Value};
use uninomial::syntax::intern::{Interner, TermId, TermNode, UExprId, UExprNode};
use uninomial::syntax::{Term, UExpr, Var, VarGen};

/// A flattened UniNomial node over e-class ids. The first group is the
/// type-valued (`UExpr`) sort, the second the tuple-valued (`Term`)
/// sort; rewrites never equate nodes across sorts.
///
/// The `Ord` instance is structural and exists so node collections can
/// be sorted into a *deterministic* traversal order — match phases and
/// extraction tie-breaks must not depend on hash-map iteration order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ENode {
    // --- UExpr sort ---
    /// `0`.
    Zero,
    /// `1`.
    One,
    /// n-ary `+`; children sorted by class id, duplicates kept.
    Add(Vec<Id>),
    /// n-ary `×`; children sorted by class id, duplicates kept.
    Mul(Vec<Id>),
    /// `n → 0`.
    Not(Id),
    /// `‖n‖`.
    Squash(Id),
    /// `Σ` over the given binder schema; the body sees the binder as
    /// `Bound(0)`.
    Sum(Schema, Id),
    /// `t₁ = t₂`; children kept sorted by class id (Lemma `EqSym`).
    Eq(Id, Id),
    /// `⟦R⟧ t`.
    Rel(String, Id),
    /// `⟦b⟧ t`.
    Pred(String, Id),
    // --- Term sort ---
    /// A free (never-bound-here) named variable.
    FreeVar(Var),
    /// A bound variable: de Bruijn distance to its binder, plus the
    /// binder's schema (kept so open classes can be extracted).
    Bound(u32, Schema),
    /// The unit tuple.
    Unit,
    /// A scalar constant.
    Const(Value),
    /// Pairing.
    Pair(Id, Id),
    /// First projection.
    Fst(Id),
    /// Second projection.
    Snd(Id),
    /// Uninterpreted function application.
    Fn(String, Vec<Id>),
    /// Aggregate over a relation body; the body sees the binder as
    /// `Bound(0)`.
    Agg(String, Schema, Id),
}

impl ENode {
    /// Whether this node is of UExpr sort (as opposed to term sort).
    /// Sorts never mix within a class, so any representative answers
    /// for the whole class — extraction-based rewrites use this to skip
    /// term-sort classes, which [`node_to_uexpr`] refuses to read back.
    pub fn is_uexpr_sort(&self) -> bool {
        matches!(
            self,
            ENode::Zero
                | ENode::One
                | ENode::Add(_)
                | ENode::Mul(_)
                | ENode::Not(_)
                | ENode::Squash(_)
                | ENode::Sum(_, _)
                | ENode::Eq(_, _)
                | ENode::Rel(_, _)
                | ENode::Pred(_, _)
        )
    }

    /// The children, in node order.
    pub fn children(&self) -> Vec<Id> {
        match self {
            ENode::Zero
            | ENode::One
            | ENode::FreeVar(_)
            | ENode::Bound(_, _)
            | ENode::Unit
            | ENode::Const(_) => Vec::new(),
            ENode::Add(xs) | ENode::Mul(xs) | ENode::Fn(_, xs) => xs.clone(),
            ENode::Not(x)
            | ENode::Squash(x)
            | ENode::Sum(_, x)
            | ENode::Rel(_, x)
            | ENode::Pred(_, x)
            | ENode::Fst(x)
            | ENode::Snd(x)
            | ENode::Agg(_, _, x) => vec![*x],
            ENode::Eq(a, b) | ENode::Pair(a, b) => vec![*a, *b],
        }
    }

    /// Rebuilds the node with children replaced by `f(child)`, applying
    /// the canonical child ordering for AC and symmetric operators.
    pub fn map_children(&self, mut f: impl FnMut(Id) -> Id) -> ENode {
        match self {
            ENode::Zero
            | ENode::One
            | ENode::FreeVar(_)
            | ENode::Bound(_, _)
            | ENode::Unit
            | ENode::Const(_) => self.clone(),
            ENode::Add(xs) => {
                let mut xs: Vec<Id> = xs.iter().map(|&x| f(x)).collect();
                xs.sort_unstable();
                ENode::Add(xs)
            }
            ENode::Mul(xs) => {
                let mut xs: Vec<Id> = xs.iter().map(|&x| f(x)).collect();
                xs.sort_unstable();
                ENode::Mul(xs)
            }
            ENode::Fn(name, xs) => ENode::Fn(name.clone(), xs.iter().map(|&x| f(x)).collect()),
            ENode::Not(x) => ENode::Not(f(*x)),
            ENode::Squash(x) => ENode::Squash(f(*x)),
            ENode::Sum(s, x) => ENode::Sum(s.clone(), f(*x)),
            ENode::Rel(r, x) => ENode::Rel(r.clone(), f(*x)),
            ENode::Pred(p, x) => ENode::Pred(p.clone(), f(*x)),
            ENode::Fst(x) => ENode::Fst(f(*x)),
            ENode::Snd(x) => ENode::Snd(f(*x)),
            ENode::Agg(name, s, x) => ENode::Agg(name.clone(), s.clone(), f(*x)),
            ENode::Eq(a, b) => {
                let (a, b) = (f(*a), f(*b));
                // Canonical orientation (Lemma `EqSym`).
                if a <= b {
                    ENode::Eq(a, b)
                } else {
                    ENode::Eq(b, a)
                }
            }
            ENode::Pair(a, b) => ENode::Pair(f(*a), f(*b)),
        }
    }

    /// Operator name, for congruence-proof notes.
    pub fn op_name(&self) -> &'static str {
        match self {
            ENode::Zero => "0",
            ENode::One => "1",
            ENode::Add(_) => "+",
            ENode::Mul(_) => "×",
            ENode::Not(_) => "¬",
            ENode::Squash(_) => "‖·‖",
            ENode::Sum(_, _) => "Σ",
            ENode::Eq(_, _) => "=",
            ENode::Rel(_, _) => "rel",
            ENode::Pred(_, _) => "pred",
            ENode::FreeVar(_) => "var",
            ENode::Bound(_, _) => "bound",
            ENode::Unit => "()",
            ENode::Const(_) => "const",
            ENode::Pair(_, _) => "pair",
            ENode::Fst(_) => ".1",
            ENode::Snd(_) => ".2",
            ENode::Fn(_, _) => "fn",
            ENode::Agg(_, _, _) => "agg",
        }
    }
}

/// A binder stack used during conversion: innermost binder last.
#[derive(Clone, Debug, Default)]
pub struct BinderStack {
    vars: Vec<Var>,
}

impl BinderStack {
    /// An empty stack (conversion of a closed expression).
    pub fn new() -> BinderStack {
        BinderStack::default()
    }

    /// A stack with the given binders already in scope, innermost last —
    /// used to re-seed rewritten open subexpressions in their original
    /// binder context.
    pub fn with_scope(vars: Vec<Var>) -> BinderStack {
        BinderStack { vars }
    }

    /// De Bruijn index of `v`, if bound here.
    fn index_of(&self, v: &Var) -> Option<u32> {
        self.vars
            .iter()
            .rev()
            .position(|b| b == v)
            .map(|i| u32::try_from(i).expect("binder depth fits u32"))
    }
}

/// Converts interned arena nodes into e-nodes via the callback `add`
/// (which interns each produced node into the e-graph and returns its
/// class id). Walks the interner's id-DAG directly — no boxed-tree
/// re-hashing. `Add`/`Mul` chains are flattened into single n-ary nodes.
pub fn seed_uexpr(
    interner: &Interner,
    id: UExprId,
    stack: &mut BinderStack,
    add: &mut impl FnMut(ENode) -> Id,
) -> Id {
    let node = match interner.uexpr_node(id).clone() {
        UExprNode::Zero => ENode::Zero,
        UExprNode::One => ENode::One,
        UExprNode::Add(_, _) => {
            let mut kids = Vec::new();
            flatten_add(interner, id, stack, add, &mut kids);
            kids.sort_unstable();
            ENode::Add(kids)
        }
        UExprNode::Mul(_, _) => {
            let mut kids = Vec::new();
            flatten_mul(interner, id, stack, add, &mut kids);
            kids.sort_unstable();
            ENode::Mul(kids)
        }
        UExprNode::Not(x) => ENode::Not(seed_uexpr(interner, x, stack, add)),
        UExprNode::Squash(x) => ENode::Squash(seed_uexpr(interner, x, stack, add)),
        UExprNode::Sum(v, body) => {
            stack.vars.push(v.clone());
            let body = seed_uexpr(interner, body, stack, add);
            stack.vars.pop();
            ENode::Sum(v.schema, body)
        }
        UExprNode::Eq(a, b) => {
            let (a, b) = (
                seed_term(interner, a, stack, add),
                seed_term(interner, b, stack, add),
            );
            if a <= b {
                ENode::Eq(a, b)
            } else {
                ENode::Eq(b, a)
            }
        }
        UExprNode::Rel(r, t) => ENode::Rel(r, seed_term(interner, t, stack, add)),
        UExprNode::Pred(p, t) => ENode::Pred(p, seed_term(interner, t, stack, add)),
    };
    add(node)
}

fn flatten_add(
    interner: &Interner,
    id: UExprId,
    stack: &mut BinderStack,
    add: &mut impl FnMut(ENode) -> Id,
    out: &mut Vec<Id>,
) {
    match interner.uexpr_node(id) {
        UExprNode::Add(a, b) => {
            let (a, b) = (*a, *b);
            flatten_add(interner, a, stack, add, out);
            flatten_add(interner, b, stack, add, out);
        }
        _ => out.push(seed_uexpr(interner, id, stack, add)),
    }
}

fn flatten_mul(
    interner: &Interner,
    id: UExprId,
    stack: &mut BinderStack,
    add: &mut impl FnMut(ENode) -> Id,
    out: &mut Vec<Id>,
) {
    match interner.uexpr_node(id) {
        UExprNode::Mul(a, b) => {
            let (a, b) = (*a, *b);
            flatten_mul(interner, a, stack, add, out);
            flatten_mul(interner, b, stack, add, out);
        }
        _ => out.push(seed_uexpr(interner, id, stack, add)),
    }
}

/// Term-sort counterpart of [`seed_uexpr`].
pub fn seed_term(
    interner: &Interner,
    id: TermId,
    stack: &mut BinderStack,
    add: &mut impl FnMut(ENode) -> Id,
) -> Id {
    let node = match interner.term_node(id).clone() {
        TermNode::Var(v) => match stack.index_of(&v) {
            Some(i) => ENode::Bound(i, v.schema),
            None => ENode::FreeVar(v),
        },
        TermNode::Unit => ENode::Unit,
        TermNode::Const(c) => ENode::Const(c),
        TermNode::Pair(a, b) => ENode::Pair(
            seed_term(interner, a, stack, add),
            seed_term(interner, b, stack, add),
        ),
        TermNode::Fst(t) => ENode::Fst(seed_term(interner, t, stack, add)),
        TermNode::Snd(t) => ENode::Snd(seed_term(interner, t, stack, add)),
        TermNode::Fn(f, args) => ENode::Fn(
            f,
            args.iter()
                .map(|&a| seed_term(interner, a, stack, add))
                .collect(),
        ),
        TermNode::Agg(name, v, body) => {
            stack.vars.push(v.clone());
            let body = seed_uexpr(interner, body, stack, add);
            stack.vars.pop();
            ENode::Agg(name, v.schema, body)
        }
    };
    add(node)
}

/// Naming environment for extraction: maps de Bruijn levels back to
/// named variables. Binders crossed during extraction push fresh names;
/// `Bound` indices that escape the extraction root (open classes) are
/// resolved through `outer`, lazily allocating one canonical free
/// variable per escaped level — consistently, so two open classes
/// extracted under the same environment agree on their shared context.
#[derive(Debug)]
pub struct NameEnv<'a> {
    /// Fresh-variable source for binders and escaped levels.
    pub gen: &'a mut VarGen,
    /// Innermost-last stack of binders crossed during this extraction.
    stack: Vec<Var>,
    /// Canonical names for levels escaping the extraction root, by
    /// escape depth (0 = nearest enclosing binder outside the root).
    outer: Vec<Option<Var>>,
}

impl<'a> NameEnv<'a> {
    /// A fresh environment.
    pub fn new(gen: &'a mut VarGen) -> NameEnv<'a> {
        NameEnv {
            gen,
            stack: Vec::new(),
            outer: Vec::new(),
        }
    }

    /// Resolves a `Bound(index, schema)` occurrence to a named variable.
    ///
    /// Schema-strict on escaped levels: when two extractions under this
    /// environment disagree on the schema of the same outer level (they
    /// come from binder contexts of different shapes), the occurrence
    /// gets a *fresh, unshared* name instead of the canonical one.
    /// Sharing only same-schema levels is what makes cross-class
    /// comparisons sound: an oracle proof over distinct free variables
    /// quantifies over them independently, never conflating
    /// type-incompatible contexts.
    pub fn resolve(&mut self, index: u32, schema: &Schema) -> Var {
        let i = index as usize;
        if i < self.stack.len() {
            return self.stack[self.stack.len() - 1 - i].clone();
        }
        let escape = i - self.stack.len();
        if escape >= self.outer.len() {
            self.outer.resize(escape + 1, None);
        }
        match &self.outer[escape] {
            Some(v) if v.schema != *schema => self.gen.fresh(schema.clone()),
            _ => self.outer[escape]
                .get_or_insert_with(|| self.gen.fresh(schema.clone()))
                .clone(),
        }
    }

    /// Runs `f` with a fresh binder pushed, returning the binder.
    pub fn with_binder<T>(&mut self, schema: &Schema, f: impl FnOnce(&mut Self, &Var) -> T) -> T {
        let v = self.gen.fresh(schema.clone());
        self.stack.push(v.clone());
        let out = f(self, &v.clone());
        self.stack.pop();
        out
    }

    /// The binder stack (innermost last) an expression extracted at the
    /// root of this environment lives under: the canonical names of all
    /// escaped levels. Levels never referenced get placeholder binders so
    /// the de Bruijn arithmetic of a re-seed stays aligned.
    pub fn outer_scope(&mut self) -> Vec<Var> {
        let gen = &mut *self.gen;
        let names: Vec<Var> = self
            .outer
            .iter_mut()
            .map(|slot| slot.get_or_insert_with(|| gen.fresh(Schema::Empty)).clone())
            .collect();
        // `outer` is indexed by escape depth (0 = innermost); a binder
        // stack lists outermost first.
        names.into_iter().rev().collect()
    }
}

/// Builds the named [`UExpr`] for an extraction choice: `node` is the
/// chosen representative e-node, `child` recursively extracts a class
/// (UExpr sort) and `child_term` a term-sort class.
pub fn node_to_uexpr(
    node: &ENode,
    env: &mut NameEnv<'_>,
    child: &mut impl FnMut(Id, &mut NameEnv<'_>) -> UExpr,
    child_term: &mut impl FnMut(Id, &mut NameEnv<'_>) -> Term,
) -> UExpr {
    match node {
        ENode::Zero => UExpr::Zero,
        ENode::One => UExpr::One,
        ENode::Add(xs) => UExpr::sum_of(xs.iter().map(|&x| child(x, env)).collect::<Vec<_>>()),
        ENode::Mul(xs) => UExpr::product(xs.iter().map(|&x| child(x, env)).collect::<Vec<_>>()),
        ENode::Not(x) => UExpr::not(child(*x, env)),
        ENode::Squash(x) => UExpr::squash(child(*x, env)),
        ENode::Sum(schema, body) => {
            let (v, b) = env.with_binder(schema, |env, v| (v.clone(), child(*body, env)));
            UExpr::sum(v, b)
        }
        ENode::Eq(a, b) => UExpr::eq(child_term(*a, env), child_term(*b, env)),
        ENode::Rel(r, t) => UExpr::Rel(r.clone(), child_term(*t, env)),
        ENode::Pred(p, t) => UExpr::Pred(p.clone(), child_term(*t, env)),
        other => panic!("term-sort node {other:?} extracted at UExpr position"),
    }
}

/// Term-sort counterpart of [`node_to_uexpr`].
pub fn node_to_term(
    node: &ENode,
    env: &mut NameEnv<'_>,
    child: &mut impl FnMut(Id, &mut NameEnv<'_>) -> UExpr,
    child_term: &mut impl FnMut(Id, &mut NameEnv<'_>) -> Term,
) -> Term {
    match node {
        ENode::FreeVar(v) => Term::Var(v.clone()),
        ENode::Bound(i, schema) => Term::Var(env.resolve(*i, schema)),
        ENode::Unit => Term::Unit,
        ENode::Const(c) => Term::Const(c.clone()),
        ENode::Pair(a, b) => Term::pair(child_term(*a, env), child_term(*b, env)),
        ENode::Fst(t) => Term::fst(child_term(*t, env)),
        ENode::Snd(t) => Term::snd(child_term(*t, env)),
        ENode::Fn(f, args) => Term::Fn(
            f.clone(),
            args.iter().map(|&a| child_term(a, env)).collect(),
        ),
        ENode::Agg(name, schema, body) => {
            let (v, b) = env.with_binder(schema, |env, v| (v.clone(), child(*body, env)));
            Term::agg(name.clone(), v, b)
        }
        other => panic!("UExpr-sort node {other:?} extracted at term position"),
    }
}
