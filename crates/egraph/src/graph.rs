//! The e-graph: hash-consed e-nodes over a proof-producing union-find,
//! with congruence-closure rebuilding.
//!
//! Beyond plain congruence, canonicalization is *theory-aware*: the
//! semiring's unit, zero, and reflexivity laws are applied while nodes
//! are (re)canonicalized, each such collapse unioning through the
//! justification of the trusted lemma it instantiates. Combined with
//! the sorted n-ary `+`/`×` nodes of [`crate::lang`], the entire
//! ACU-with-zero fragment of the axiom catalog is decided by the
//! rebuild loop itself; the searching rewrites in [`crate::rewrite`]
//! only handle the laws that genuinely change term structure.
//!
//! Internally nodes are stored in the compact, `Copy` form of
//! [`crate::arena`]: interned payloads plus child-list views into a
//! shared flat arena, so hashcons lookups, class appends, and parent
//! registration move handles instead of deep-cloning [`ENode`]s, and
//! congruence hashing is a handle hash (the slice hash is paid once at
//! span interning). The public API still speaks [`ENode`].
//!
//! Congruence repair is *deferred* by default ([`RebuildMode::Deferred`]):
//! [`EGraph::union`] only pushes the merged class onto a pending
//! worklist, and [`EGraph::rebuild`] drains it to fixpoint once per
//! saturation iteration — and, via the internal clean-guard, once
//! before any snapshot, extraction, or explanation is taken. The
//! rebuild-per-union baseline survives as [`RebuildMode::PerUnion`] so
//! property tests can assert the batched path is observationally
//! identical.

use crate::arena::{CNode, NodeArena};
use crate::lang::{node_to_term, node_to_uexpr, ENode, NameEnv};
use crate::unionfind::{Id, Justification, UnionFind};
use relalg::Value;
use std::collections::{HashMap, HashSet};
use uninomial::lemmas::Lemma;
use uninomial::normalize::Trace;
use uninomial::syntax::{Term, UExpr};

/// One equivalence class: its member nodes and the parent nodes that
/// reference it (for congruence repair).
#[derive(Clone, Debug, Default)]
pub struct EClass {
    /// Member nodes (canonical at the time they were recorded).
    nodes: Vec<CNode>,
    /// Parent nodes and the class each belongs to.
    parents: Vec<(CNode, Id)>,
}

/// When congruence repair runs relative to unions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebuildMode {
    /// Unions only enqueue the merged class; [`EGraph::rebuild`] drains
    /// the worklist once per saturation iteration (and once before any
    /// snapshot/extraction/explanation). The shipping fast path.
    #[default]
    Deferred,
    /// Every union immediately rebuilds to fixpoint — the simple
    /// baseline the batched path must be observationally identical to.
    PerUnion,
}

/// The e-graph.
#[derive(Clone, Debug)]
pub struct EGraph {
    uf: UnionFind,
    arena: NodeArena,
    classes: HashMap<Id, EClass>,
    hashcons: HashMap<CNode, Id>,
    dirty: Vec<Id>,
    rebuild_mode: RebuildMode,
    /// Re-entrancy guard: unions performed *by* the rebuild loop are
    /// always deferred to its own worklist, in either mode.
    rebuilding: bool,
    n_nodes: usize,
    n_unions: usize,
    generation: u64,
    zero: Id,
    one: Id,
}

/// Result of theory simplification during canonicalization.
enum Simplified {
    /// The node collapsed to an existing class outright.
    Alias(Id, Lemma, &'static str),
    /// The (possibly rewritten) node stands on its own.
    Node(CNode),
}

/// Hard cap on n-ary node width; flattening stops growing beyond it.
const MAX_NARY: usize = 64;

impl Default for EGraph {
    fn default() -> EGraph {
        EGraph::new()
    }
}

impl EGraph {
    /// An empty e-graph (with `0` and `1` pre-interned).
    pub fn new() -> EGraph {
        let mut eg = EGraph {
            uf: UnionFind::new(),
            arena: NodeArena::new(),
            classes: HashMap::new(),
            hashcons: HashMap::new(),
            dirty: Vec::new(),
            rebuild_mode: RebuildMode::Deferred,
            rebuilding: false,
            n_nodes: 0,
            n_unions: 0,
            generation: 0,
            zero: Id(0),
            one: Id(0),
        };
        // Bootstrap the constant classes directly — `add` consults them
        // during simplification, so they must exist first.
        for node in [CNode::Zero, CNode::One] {
            let id = eg.uf.make_set();
            eg.classes.entry(id).or_default().nodes.push(node);
            eg.hashcons.insert(node, id);
            eg.n_nodes += 1;
            if node == CNode::Zero {
                eg.zero = id;
            } else {
                eg.one = id;
            }
        }
        eg
    }

    /// The class of `0`.
    pub fn zero(&mut self) -> Id {
        self.uf.find(self.zero)
    }

    /// The class of `1`.
    pub fn one(&mut self) -> Id {
        self.uf.find(self.one)
    }

    /// Total number of distinct e-nodes ever interned.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Number of unions performed so far.
    pub fn union_count(&self) -> usize {
        self.n_unions
    }

    /// Number of live e-class entries (growth-timeline sample; includes
    /// child-only classes that exist solely to track parents).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of live hashcons (memo) entries — the canonical-node
    /// index whose growth bounds congruence-rebuild work.
    pub fn memo_size(&self) -> usize {
        self.hashcons.len()
    }

    /// Monotone modification counter: bumped whenever a new node is
    /// interned or a union merges two classes. A persistent session uses
    /// it to detect that nothing changed since its last full saturation
    /// pass and skip the (whole-graph) match phase entirely — the
    /// epoch-tracking half of incremental rebuild.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The active [`RebuildMode`].
    pub fn rebuild_mode(&self) -> RebuildMode {
        self.rebuild_mode
    }

    /// Selects when congruence repair runs. [`RebuildMode::PerUnion`]
    /// exists for differential testing against the batched default.
    pub fn set_rebuild_mode(&mut self, mode: RebuildMode) {
        self.rebuild_mode = mode;
    }

    /// Canonical representative of a class id.
    pub fn find(&mut self, id: Id) -> Id {
        self.uf.find(id)
    }

    /// Whether two ids are currently in the same class.
    pub fn same(&mut self, a: Id, b: Id) -> bool {
        self.uf.same(a, b)
    }

    /// The member nodes of the class of `id`.
    pub fn class_nodes(&mut self, id: Id) -> Vec<ENode> {
        let id = self.uf.find(id);
        match self.classes.get(&id) {
            Some(c) => c.nodes.iter().map(|&n| self.arena.enode(n)).collect(),
            None => Vec::new(),
        }
    }

    /// All canonical class ids (post-rebuild snapshot).
    pub fn class_ids(&mut self) -> Vec<Id> {
        let ids: Vec<Id> = self.classes.keys().copied().collect();
        ids.into_iter()
            .map(|i| self.uf.find(i))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect()
    }

    /// Interns a node (children need not be canonical), returning its
    /// class id. Theory simplification may collapse it to an existing
    /// class without creating a node.
    pub fn add(&mut self, node: ENode) -> Id {
        let node = {
            let EGraph { uf, arena, .. } = self;
            arena.intern(&node, |c| uf.find(c))
        };
        self.add_compact(node)
    }

    /// [`EGraph::add`] after payload interning and child
    /// canonicalization.
    fn add_compact(&mut self, node: CNode) -> Id {
        match self.simplify(node) {
            Simplified::Alias(id, _, _) => self.uf.find(id),
            Simplified::Node(node) => {
                if let Some(&id) = self.hashcons.get(&node) {
                    return self.uf.find(id);
                }
                let id = self.uf.make_set();
                let mut kids = Vec::new();
                self.arena.push_children(node, &mut kids);
                for child in kids {
                    self.classes
                        .entry(child)
                        .or_default()
                        .parents
                        .push((node, id));
                }
                let class = self.classes.entry(id).or_default();
                class.nodes.push(node);
                self.hashcons.insert(node, id);
                self.n_nodes += 1;
                self.generation += 1;
                id
            }
        }
    }

    /// Theory-aware canonicalization. `node`'s children are canonical.
    fn simplify(&mut self, node: CNode) -> Simplified {
        let zero = self.uf.find(self.zero);
        let one = self.uf.find(self.one);
        match node {
            CNode::Mul(s) => {
                let xs = self.arena.span_vec(s);
                let xs = self.flatten(xs, /* mul: */ true);
                if xs.contains(&zero) {
                    return Simplified::Alias(zero, Lemma::MulZero, "a × 0 = 0");
                }
                let mut xs: Vec<Id> = xs.into_iter().filter(|&x| x != one).collect();
                xs.sort_unstable();
                match xs.len() {
                    0 => Simplified::Alias(one, Lemma::MulAcu, "empty product is 1"),
                    1 => Simplified::Alias(xs[0], Lemma::MulAcu, "a × 1 = a"),
                    _ => Simplified::Node(CNode::Mul(self.arena.intern_span(&xs))),
                }
            }
            CNode::Add(s) => {
                let xs = self.arena.span_vec(s);
                let xs = self.flatten(xs, /* mul: */ false);
                let mut xs: Vec<Id> = xs.into_iter().filter(|&x| x != zero).collect();
                xs.sort_unstable();
                match xs.len() {
                    0 => Simplified::Alias(zero, Lemma::AddAcu, "empty sum is 0"),
                    1 => Simplified::Alias(xs[0], Lemma::AddAcu, "a + 0 = a"),
                    _ => Simplified::Node(CNode::Add(self.arena.intern_span(&xs))),
                }
            }
            CNode::Eq(a, b) => {
                if a == b {
                    return Simplified::Alias(one, Lemma::EqRefl, "(t = t) = 1");
                }
                if let (Some(x), Some(y)) = (self.const_id_of(a), self.const_id_of(b)) {
                    if x != y {
                        return Simplified::Alias(
                            zero,
                            Lemma::EqConstNeq,
                            "distinct constants are unequal",
                        );
                    }
                }
                Simplified::Node(CNode::Eq(a, b))
            }
            CNode::Sum(schema, body) => {
                if body == zero {
                    return Simplified::Alias(zero, Lemma::SumZero, "Σx.0 = 0");
                }
                Simplified::Node(CNode::Sum(schema, body))
            }
            CNode::Not(x) => {
                if x == zero {
                    return Simplified::Alias(one, Lemma::NotBase, "¬0 = 1");
                }
                if x == one {
                    return Simplified::Alias(zero, Lemma::NotBase, "¬1 = 0");
                }
                Simplified::Node(CNode::Not(x))
            }
            CNode::Squash(x) => {
                if x == zero {
                    return Simplified::Alias(zero, Lemma::SquashBase, "‖0‖ = 0");
                }
                if x == one {
                    return Simplified::Alias(one, Lemma::SquashBase, "‖1‖ = 1");
                }
                Simplified::Node(CNode::Squash(x))
            }
            CNode::Fst(t) => {
                // Tuple β: (a, b).1 = a.
                if let Some((a, _)) = self.pair_of(t) {
                    return Simplified::Alias(a, Lemma::TupleBeta, "(a,b).1 = a");
                }
                Simplified::Node(CNode::Fst(t))
            }
            CNode::Snd(t) => {
                if let Some((_, b)) = self.pair_of(t) {
                    return Simplified::Alias(b, Lemma::TupleBeta, "(a,b).2 = b");
                }
                Simplified::Node(CNode::Snd(t))
            }
            other => Simplified::Node(other),
        }
    }

    /// Splices children that are themselves `+`/`×` classes into the
    /// parent's child list (associativity), up to the width cap.
    fn flatten(&mut self, xs: Vec<Id>, mul: bool) -> Vec<Id> {
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            if out.len() >= MAX_NARY {
                out.push(x);
                continue;
            }
            let x = self.uf.find(x);
            let inner: Option<crate::arena::Span> = self.classes.get(&x).and_then(|c| {
                c.nodes.iter().find_map(|n| match (mul, n) {
                    (true, CNode::Mul(s)) => Some(*s),
                    (false, CNode::Add(s)) => Some(*s),
                    _ => None,
                })
            });
            match inner {
                Some(s) if out.len() + self.arena.span_len(s) <= MAX_NARY => {
                    let kids = self.arena.span_vec(s);
                    out.extend(kids.into_iter().map(|k| self.uf.find(k)));
                }
                _ => out.push(x),
            }
        }
        out
    }

    /// The constant a term-sort class is known to equal, if any.
    pub fn constant_of(&mut self, id: Id) -> Option<Value> {
        let v = self.const_id_of(id)?;
        Some(self.arena.value(v).clone())
    }

    /// Interned-id form of [`EGraph::constant_of`] (payload compare
    /// without cloning the value).
    fn const_id_of(&mut self, id: Id) -> Option<crate::arena::ValueId> {
        let id = self.uf.find(id);
        self.classes.get(&id)?.nodes.iter().find_map(|n| match n {
            CNode::Const(v) => Some(*v),
            _ => None,
        })
    }

    /// The `(fst, snd)` classes of a term-sort class containing a pair
    /// node, if any.
    fn pair_of(&mut self, id: Id) -> Option<(Id, Id)> {
        let id = self.uf.find(id);
        self.classes.get(&id)?.nodes.iter().find_map(|n| match n {
            CNode::Pair(a, b) => Some((*a, *b)),
            _ => None,
        })
    }

    /// Merges two classes with a rewrite justification. Returns whether
    /// anything changed. Under [`RebuildMode::Deferred`] this only
    /// enqueues repair work — call [`EGraph::rebuild`] before the next
    /// match phase.
    pub fn union(&mut self, a: Id, b: Id, lemma: Lemma, note: impl Into<String>) -> bool {
        self.union_detailed(a, b, lemma, note, Vec::new())
    }

    /// [`EGraph::union`] carrying the lemma steps of the oracle that
    /// discharged the rewrite's side condition.
    pub fn union_detailed(
        &mut self,
        a: Id,
        b: Id,
        lemma: Lemma,
        note: impl Into<String>,
        substeps: Vec<(Lemma, String)>,
    ) -> bool {
        self.union_just(
            a,
            b,
            Justification::Rule {
                lemma,
                note: note.into(),
                substeps,
            },
        )
    }

    fn union_just(&mut self, a: Id, b: Id, just: Justification) -> bool {
        let Some((winner, loser)) = self.uf.union(a, b, just) else {
            return false;
        };
        self.n_unions += 1;
        self.generation += 1;
        let lost = self.classes.remove(&loser).unwrap_or_default();
        let class = self.classes.entry(winner).or_default();
        class.nodes.extend(lost.nodes);
        class.parents.extend(lost.parents);
        self.dirty.push(winner);
        if self.rebuild_mode == RebuildMode::PerUnion && !self.rebuilding {
            self.rebuild();
        }
        true
    }

    /// Rebuilds now if any union left the congruence invariant pending —
    /// the guard every snapshot/extraction/explanation entry point runs,
    /// so deferred repair can never leak stale structure to a reader.
    fn ensure_clean(&mut self) {
        if !self.dirty.is_empty() {
            self.rebuild();
        }
    }

    /// Restores the congruence invariant after unions: re-canonicalizes
    /// parents of merged classes, re-simplifies them, and unions classes
    /// whose nodes collapse together. Runs to fixpoint.
    pub fn rebuild(&mut self) {
        self.rebuilding = true;
        while let Some(id) = self.dirty.pop() {
            let id = self.uf.find(id);
            let parents = match self.classes.get_mut(&id) {
                Some(c) => std::mem::take(&mut c.parents),
                None => continue,
            };
            let mut kept: Vec<(CNode, Id)> = Vec::new();
            let mut seen: HashSet<CNode> = HashSet::new();
            for (node, pid) in parents {
                self.hashcons.remove(&node);
                let pid = self.uf.find(pid);
                let canon = {
                    let EGraph { uf, arena, .. } = self;
                    arena.canonicalize(node, |c| uf.find(c))
                };
                match self.simplify(canon) {
                    Simplified::Alias(target, lemma, note) => {
                        self.union_just(
                            pid,
                            target,
                            Justification::Rule {
                                lemma,
                                note: note.to_owned(),
                                substeps: Vec::new(),
                            },
                        );
                    }
                    Simplified::Node(canon) => {
                        match self.hashcons.get(&canon) {
                            Some(&other) => {
                                let other = self.uf.find(other);
                                if other != pid {
                                    let mut old_kids = Vec::new();
                                    self.arena.push_children(node, &mut old_kids);
                                    let mut new_kids = Vec::new();
                                    self.arena.push_children(canon, &mut new_kids);
                                    let children: Vec<(Id, Id)> =
                                        old_kids.into_iter().zip(new_kids).collect();
                                    self.union_just(
                                        pid,
                                        other,
                                        Justification::Congruence {
                                            op: canon.op_name(),
                                            children,
                                        },
                                    );
                                }
                            }
                            None => {
                                self.hashcons.insert(canon, pid);
                            }
                        }
                        if seen.insert(canon) {
                            kept.push((canon, pid));
                        }
                    }
                }
            }
            let id = self.uf.find(id);
            self.classes.entry(id).or_default().parents.extend(kept);
        }
        self.rebuilding = false;
        debug_assert!(self.dirty.is_empty());
    }

    /// A snapshot of `(canonical node, class id)` pairs for the match
    /// phase of a saturation iteration. Sorted by class then node, so
    /// rewrite matching and extraction tie-breaking are deterministic
    /// (hash-map iteration order must never leak into chosen plans or
    /// explanations). Pending congruence repair is drained first.
    pub fn node_snapshot(&mut self) -> Vec<(ENode, Id)> {
        self.ensure_clean();
        let entries: Vec<(CNode, Id)> = self.hashcons.iter().map(|(&n, &id)| (n, id)).collect();
        let mut canon: Vec<(ENode, Id)> = entries
            .into_iter()
            .map(|(n, id)| {
                let id = self.uf.find(id);
                let cn = {
                    let EGraph { uf, arena, .. } = self;
                    arena.canonicalize(n, |c| uf.find(c))
                };
                (self.arena.enode(cn), id)
            })
            .collect();
        canon.sort_unstable_by(|(na, ia), (nb, ib)| ia.cmp(ib).then_with(|| na.cmp(nb)));
        canon
    }

    /// Minimum-size extraction table: canonical class id → (cost, best
    /// node). Classes reachable only through cycles are absent. The
    /// cost-generic version is [`EGraph::extraction_with`].
    pub fn extraction(&mut self) -> HashMap<Id, (usize, ENode)> {
        self.extraction_with(&crate::extract::TreeSize)
    }

    /// Best-cost extraction table under an arbitrary
    /// [`CostFunction`](crate::extract::CostFunction): canonical class
    /// id → (cost, best node).
    pub fn extraction_with<C: crate::extract::CostFunction>(
        &mut self,
        cost: &C,
    ) -> HashMap<Id, (C::Cost, ENode)> {
        let snapshot = self.node_snapshot();
        crate::extract::best_costs(&snapshot, cost)
    }

    /// Extracts the best [`UExpr`] of a class under an extraction table
    /// (any cost type), resolving bound indices through `env`. `None`
    /// when the class has no finite-cost representative (cycle-only) or
    /// `best` lacks an entry.
    pub fn extract_uexpr<K: Clone>(
        &mut self,
        best: &HashMap<Id, (K, ENode)>,
        id: Id,
        env: &mut NameEnv<'_>,
    ) -> Option<UExpr> {
        let key = self.extraction_key(best, id)?;
        let (_, node) = best.get(&key)?.clone();
        if !self.extractable(best, key) {
            return None;
        }
        Some(best_uexpr(best, &node, env))
    }

    /// Term-sort counterpart of [`EGraph::extract_uexpr`].
    pub fn extract_term<K: Clone>(
        &mut self,
        best: &HashMap<Id, (K, ENode)>,
        id: Id,
        env: &mut NameEnv<'_>,
    ) -> Option<Term> {
        let key = self.extraction_key(best, id)?;
        let (_, node) = best.get(&key)?.clone();
        if !self.extractable(best, key) {
            return None;
        }
        Some(best_term(best, &node, env))
    }

    /// The key under which `id` appears in an extraction table. The
    /// table is keyed by ids canonical at the time it was built; unions
    /// performed since may have re-rooted `id`, in which case the
    /// original id still indexes the (still-valid) pre-union entry.
    fn extraction_key<K>(&mut self, best: &HashMap<Id, (K, ENode)>, id: Id) -> Option<Id> {
        let canon = self.uf.find(id);
        if best.contains_key(&canon) {
            Some(canon)
        } else if best.contains_key(&id) {
            Some(id)
        } else {
            None
        }
    }

    /// Whether every class reachable from `id`'s best node has a best
    /// node itself, with no cycle among the chosen nodes (extraction
    /// will neither panic nor recurse forever). A non-monotone cost
    /// function can record a self-referential best node — a table a
    /// readback must refuse, not chase. `id` must be a valid extraction
    /// key.
    fn extractable<K>(&mut self, best: &HashMap<Id, (K, ENode)>, id: Id) -> bool {
        // Iterative DFS with an explicit on-path set: `Enter` pushes the
        // children, `Exit` pops the class off the current path.
        enum Step {
            Enter(Id),
            Exit(Id),
        }
        let mut stack = vec![Step::Enter(id)];
        let mut done: HashSet<Id> = HashSet::new();
        let mut on_path: HashSet<Id> = HashSet::new();
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(c) => {
                    if done.contains(&c) {
                        continue;
                    }
                    if !on_path.insert(c) {
                        return false; // chosen nodes form a cycle
                    }
                    let Some((_, node)) = best.get(&c) else {
                        return false;
                    };
                    stack.push(Step::Exit(c));
                    for child in node.children() {
                        stack.push(Step::Enter(child));
                    }
                }
                Step::Exit(c) => {
                    on_path.remove(&c);
                    done.insert(c);
                }
            }
        }
        true
    }

    /// Appends to `trace` the chain of lemma applications that merged
    /// `a` and `b`, recursing through congruence steps. Returns `false`
    /// if the ids are not equivalent. Pending congruence repair is
    /// drained first, so the proof forest the walk reads is final.
    pub fn explain_into(&mut self, a: Id, b: Id, trace: &mut Trace) -> bool {
        self.ensure_clean();
        let mut seen: HashSet<(Id, Id)> = HashSet::new();
        self.explain_rec(a, b, trace, &mut seen, 0)
    }

    fn explain_rec(
        &mut self,
        a: Id,
        b: Id,
        trace: &mut Trace,
        seen: &mut HashSet<(Id, Id)>,
        depth: usize,
    ) -> bool {
        if a == b || depth > 16 {
            return true;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if !seen.insert(key) {
            return true; // already explained elsewhere in this proof
        }
        let Some(path) = self.uf.explain(a, b) else {
            return false;
        };
        let steps: Vec<Justification> = path.into_iter().cloned().collect();
        for just in steps {
            match just {
                Justification::Rule {
                    lemma,
                    note,
                    substeps,
                } => {
                    trace.step(lemma, note);
                    for (l, n) in substeps {
                        trace.step(l, n);
                    }
                }
                Justification::Congruence { op, children } => {
                    trace.step(Lemma::EqCongruence, format!("congruence on {op}"));
                    for (x, y) in children {
                        self.explain_rec(x, y, trace, seen, depth + 1);
                    }
                }
            }
        }
        true
    }
}

/// Builds the best [`UExpr`] from a chosen representative node.
fn best_uexpr<K: Clone>(
    best: &HashMap<Id, (K, ENode)>,
    node: &ENode,
    env: &mut NameEnv<'_>,
) -> UExpr {
    node_to_uexpr(
        node,
        env,
        &mut |id, env| {
            let (_, n) = best.get(&id).expect("finite-cost child").clone();
            best_uexpr(best, &n, env)
        },
        &mut |id, env| {
            let (_, n) = best.get(&id).expect("finite-cost child").clone();
            best_term(best, &n, env)
        },
    )
}

/// Builds the best [`Term`] from a chosen representative node.
fn best_term<K: Clone>(
    best: &HashMap<Id, (K, ENode)>,
    node: &ENode,
    env: &mut NameEnv<'_>,
) -> Term {
    node_to_term(
        node,
        env,
        &mut |id, env| {
            let (_, n) = best.get(&id).expect("finite-cost child").clone();
            best_uexpr(best, &n, env)
        },
        &mut |id, env| {
            let (_, n) = best.get(&id).expect("finite-cost child").clone();
            best_term(best, &n, env)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ac_is_structural() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let r = eg.add(ENode::Rel("R".into(), u));
        let s = eg.add(ENode::Rel("S".into(), u));
        let ab = eg.add(ENode::Mul(vec![r, s]));
        let ba = eg.add(ENode::Mul(vec![s, r]));
        assert!(eg.same(ab, ba), "sorted n-ary children make × commutative");
    }

    #[test]
    fn units_and_zero_collapse() {
        let mut eg = EGraph::new();
        let one = eg.one();
        let zero = eg.zero();
        let u = eg.add(ENode::Unit);
        let r = eg.add(ENode::Rel("R".into(), u));
        let r1 = eg.add(ENode::Mul(vec![r, one]));
        assert!(eg.same(r1, r), "R × 1 = R");
        let rz = eg.add(ENode::Mul(vec![r, zero]));
        assert!(eg.same(rz, zero), "R × 0 = 0");
        let r_plus_zero = eg.add(ENode::Add(vec![r, zero]));
        assert!(eg.same(r_plus_zero, r), "R + 0 = R");
    }

    #[test]
    fn duplicates_are_kept_in_products() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let r = eg.add(ENode::Rel("R".into(), u));
        let rr = eg.add(ENode::Mul(vec![r, r]));
        assert!(!eg.same(rr, r), "R × R ≠ R (bag semantics)");
    }

    #[test]
    fn congruence_propagates_after_union() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let x = eg.add(ENode::FreeVar(
            uninomial::syntax::VarGen::new().fresh(relalg::Schema::leaf(relalg::BaseType::Int)),
        ));
        let ru = eg.add(ENode::Rel("R".into(), u));
        let rx = eg.add(ENode::Rel("R".into(), x));
        assert!(!eg.same(ru, rx));
        eg.union(u, x, Lemma::EqCongruence, "test premise");
        eg.rebuild();
        assert!(eg.same(ru, rx), "R(u) = R(x) once u = x");
        // The explanation must mention congruence.
        let mut tr = Trace::new();
        assert!(eg.explain_into(ru, rx, &mut tr));
        assert!(!tr.is_empty());
    }

    #[test]
    fn eq_of_merged_children_is_one() {
        let mut eg = EGraph::new();
        let mut gen = uninomial::syntax::VarGen::new();
        let schema = relalg::Schema::leaf(relalg::BaseType::Int);
        let a = eg.add(ENode::FreeVar(gen.fresh(schema.clone())));
        let b = eg.add(ENode::FreeVar(gen.fresh(schema)));
        let e = eg.add(ENode::Eq(a, b));
        assert!(!eg.same(e, eg.one));
        eg.union(a, b, Lemma::EqCongruence, "premise");
        eg.rebuild();
        let one = eg.one();
        let e = eg.find(e);
        assert_eq!(e, one, "(a = a) collapses to 1 on rebuild");
    }

    #[test]
    fn distinct_constants_make_eq_zero() {
        let mut eg = EGraph::new();
        let c1 = eg.add(ENode::Const(Value::Int(1)));
        let c2 = eg.add(ENode::Const(Value::Int(2)));
        let e = eg.add(ENode::Eq(c1, c2));
        let zero = eg.zero();
        assert_eq!(eg.find(e), zero);
    }

    #[test]
    fn flattening_merges_nested_products() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let r = eg.add(ENode::Rel("R".into(), u));
        let s = eg.add(ENode::Rel("S".into(), u));
        let t = eg.add(ENode::Rel("T".into(), u));
        let rs = eg.add(ENode::Mul(vec![r, s]));
        let nested = eg.add(ENode::Mul(vec![rs, t]));
        let flat = eg.add(ENode::Mul(vec![r, s, t]));
        assert!(eg.same(nested, flat), "associativity by flattening");
    }

    #[test]
    fn per_union_mode_matches_deferred_on_congruence_cascade() {
        // Same premise as `congruence_propagates_after_union`, but the
        // per-union baseline needs no explicit rebuild call at all.
        let mut eg = EGraph::new();
        eg.set_rebuild_mode(RebuildMode::PerUnion);
        let u = eg.add(ENode::Unit);
        let x = eg.add(ENode::FreeVar(
            uninomial::syntax::VarGen::new().fresh(relalg::Schema::leaf(relalg::BaseType::Int)),
        ));
        let ru = eg.add(ENode::Rel("R".into(), u));
        let rx = eg.add(ENode::Rel("R".into(), x));
        eg.union(u, x, Lemma::EqCongruence, "test premise");
        assert!(eg.same(ru, rx), "per-union mode repairs immediately");
    }

    #[test]
    fn snapshot_and_explain_self_clean_pending_repair() {
        let mut eg = EGraph::new();
        let u = eg.add(ENode::Unit);
        let x = eg.add(ENode::FreeVar(
            uninomial::syntax::VarGen::new().fresh(relalg::Schema::leaf(relalg::BaseType::Int)),
        ));
        let ru = eg.add(ENode::Rel("R".into(), u));
        let rx = eg.add(ENode::Rel("R".into(), x));
        eg.union(u, x, Lemma::EqCongruence, "premise");
        // No explicit rebuild: the snapshot guard must drain the
        // worklist, so both `R` applications land in one class.
        let snap = eg.node_snapshot();
        let r_classes: HashSet<Id> = snap
            .iter()
            .filter_map(|(n, id)| matches!(n, ENode::Rel(_, _)).then_some(*id))
            .collect();
        assert_eq!(r_classes.len(), 1, "snapshot self-cleans: {snap:?}");
        let mut tr = Trace::new();
        assert!(eg.explain_into(ru, rx, &mut tr));
    }
}
