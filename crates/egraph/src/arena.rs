//! Flat e-node storage: interned payloads plus a shared child arena.
//!
//! The public [`ENode`](crate::lang::ENode) carries heap payloads — a
//! `Vec<Id>` per n-ary node, a `String` per relation name, a `Schema`
//! per binder — which made every hashcons insert, class append, and
//! parent registration a deep clone. Internally the e-graph now stores
//! [`CNode`]: a `Copy` mirror of `ENode` whose names, schemas, values,
//! and variables are interned into side tables and whose child lists
//! are *views* into one shared `u32` child arena. Lists of up to two
//! children are kept inline in the [`Span`] handle itself (the fast
//! path — every unary/binary operator and most products), longer lists
//! are deduplicated slices of the flat buffer.
//!
//! Because spans are deduplicated, two nodes are structurally equal iff
//! their `CNode` values are equal, and hashing a node hashes a handle —
//! the slice hash is paid once at span interning instead of on every
//! congruence lookup.

use crate::lang::ENode;
use crate::unionfind::Id;
use relalg::{Schema, Value};
use std::collections::HashMap;
use uninomial::syntax::Var;

/// Interned relation/predicate/function name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct NameId(u32);

/// Interned binder schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct SchemaId(u32);

/// Interned scalar constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct ValueId(u32);

/// Interned free variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct VarId(u32);

/// A view of a child list. Up to two children live inline (no arena
/// traffic at all); longer lists are deduplicated `(start, len)` ranges
/// of the shared child buffer, so equal lists get equal spans and span
/// equality is list equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum Span {
    /// Inline storage for 0–2 children; unused slots are zeroed so the
    /// derived `Eq`/`Hash` stay content-based.
    Inline([Id; 2], u8),
    /// A deduplicated range of the shared child buffer.
    Arena {
        /// Start offset in the flat buffer.
        start: u32,
        /// Number of children.
        len: u32,
    },
}

/// The compact, `Copy` e-node stored in the hashcons, class node lists,
/// and parent lists. Mirrors [`ENode`] variant-for-variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum CNode {
    Zero,
    One,
    Add(Span),
    Mul(Span),
    Not(Id),
    Squash(Id),
    Sum(SchemaId, Id),
    Eq(Id, Id),
    Rel(NameId, Id),
    Pred(NameId, Id),
    FreeVar(VarId),
    Bound(u32, SchemaId),
    Unit,
    Const(ValueId),
    Pair(Id, Id),
    Fst(Id),
    Snd(Id),
    Fn(NameId, Span),
    Agg(NameId, SchemaId, Id),
}

impl CNode {
    /// Operator name, for congruence-proof notes (mirrors
    /// [`ENode::op_name`]).
    pub(crate) fn op_name(self) -> &'static str {
        match self {
            CNode::Zero => "0",
            CNode::One => "1",
            CNode::Add(_) => "+",
            CNode::Mul(_) => "×",
            CNode::Not(_) => "¬",
            CNode::Squash(_) => "‖·‖",
            CNode::Sum(_, _) => "Σ",
            CNode::Eq(_, _) => "=",
            CNode::Rel(_, _) => "rel",
            CNode::Pred(_, _) => "pred",
            CNode::FreeVar(_) => "var",
            CNode::Bound(_, _) => "bound",
            CNode::Unit => "()",
            CNode::Const(_) => "const",
            CNode::Pair(_, _) => "pair",
            CNode::Fst(_) => ".1",
            CNode::Snd(_) => ".2",
            CNode::Fn(_, _) => "fn",
            CNode::Agg(_, _, _) => "agg",
        }
    }
}

/// The interning side tables and the shared child buffer.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeArena {
    children: Vec<Id>,
    span_dedup: HashMap<Box<[Id]>, Span>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    schemas: Vec<Schema>,
    schema_ids: HashMap<Schema, u32>,
    values: Vec<Value>,
    value_ids: HashMap<Value, u32>,
    vars: Vec<Var>,
    var_ids: HashMap<Var, u32>,
}

impl NodeArena {
    pub(crate) fn new() -> NodeArena {
        NodeArena::default()
    }

    fn intern_name(&mut self, s: &str) -> NameId {
        if let Some(&i) = self.name_ids.get(s) {
            return NameId(i);
        }
        let i = u32::try_from(self.names.len()).expect("name table overflow");
        self.names.push(s.to_owned());
        self.name_ids.insert(s.to_owned(), i);
        NameId(i)
    }

    fn intern_schema(&mut self, s: &Schema) -> SchemaId {
        if let Some(&i) = self.schema_ids.get(s) {
            return SchemaId(i);
        }
        let i = u32::try_from(self.schemas.len()).expect("schema table overflow");
        self.schemas.push(s.clone());
        self.schema_ids.insert(s.clone(), i);
        SchemaId(i)
    }

    fn intern_value(&mut self, v: &Value) -> ValueId {
        if let Some(&i) = self.value_ids.get(v) {
            return ValueId(i);
        }
        let i = u32::try_from(self.values.len()).expect("value table overflow");
        self.values.push(v.clone());
        self.value_ids.insert(v.clone(), i);
        ValueId(i)
    }

    fn intern_var(&mut self, v: &Var) -> VarId {
        if let Some(&i) = self.var_ids.get(v) {
            return VarId(i);
        }
        let i = u32::try_from(self.vars.len()).expect("var table overflow");
        self.vars.push(v.clone());
        self.var_ids.insert(v.clone(), i);
        VarId(i)
    }

    /// Interns a child list, deduplicating long lists and keeping short
    /// ones inline.
    pub(crate) fn intern_span(&mut self, kids: &[Id]) -> Span {
        if kids.len() <= 2 {
            let mut buf = [Id(0); 2];
            buf[..kids.len()].copy_from_slice(kids);
            return Span::Inline(buf, kids.len() as u8);
        }
        if let Some(&s) = self.span_dedup.get(kids) {
            return s;
        }
        let start = u32::try_from(self.children.len()).expect("child arena overflow");
        self.children.extend_from_slice(kids);
        let span = Span::Arena {
            start,
            len: kids.len() as u32,
        };
        self.span_dedup
            .insert(kids.to_vec().into_boxed_slice(), span);
        span
    }

    /// The children a span views, as a borrowed slice.
    pub(crate) fn span_slice<'a>(&'a self, s: &'a Span) -> &'a [Id] {
        match s {
            Span::Inline(buf, len) => &buf[..*len as usize],
            Span::Arena { start, len } => &self.children[*start as usize..][..*len as usize],
        }
    }

    /// The children a span views, copied out (for sites that mutate).
    pub(crate) fn span_vec(&self, s: Span) -> Vec<Id> {
        self.span_slice(&s).to_vec()
    }

    /// Number of children a span views.
    pub(crate) fn span_len(&self, s: Span) -> usize {
        match s {
            Span::Inline(_, len) => len as usize,
            Span::Arena { len, .. } => len as usize,
        }
    }

    /// Appends `node`'s children to `out`, in node order.
    pub(crate) fn push_children(&self, node: CNode, out: &mut Vec<Id>) {
        match node {
            CNode::Zero
            | CNode::One
            | CNode::FreeVar(_)
            | CNode::Bound(_, _)
            | CNode::Unit
            | CNode::Const(_) => {}
            CNode::Add(s) | CNode::Mul(s) | CNode::Fn(_, s) => {
                out.extend_from_slice(self.span_slice(&s));
            }
            CNode::Not(x)
            | CNode::Squash(x)
            | CNode::Sum(_, x)
            | CNode::Rel(_, x)
            | CNode::Pred(_, x)
            | CNode::Fst(x)
            | CNode::Snd(x)
            | CNode::Agg(_, _, x) => out.push(x),
            CNode::Eq(a, b) | CNode::Pair(a, b) => {
                out.push(a);
                out.push(b);
            }
        }
    }

    /// Converts a public node to compact form, canonicalizing children
    /// through `canon`. Applies the same canonical child ordering as
    /// [`ENode::map_children`]: sorted `+`/`×` children, oriented `=`.
    pub(crate) fn intern(&mut self, node: &ENode, mut canon: impl FnMut(Id) -> Id) -> CNode {
        match node {
            ENode::Zero => CNode::Zero,
            ENode::One => CNode::One,
            ENode::Add(xs) => {
                let mut kids: Vec<Id> = xs.iter().map(|&x| canon(x)).collect();
                kids.sort_unstable();
                CNode::Add(self.intern_span(&kids))
            }
            ENode::Mul(xs) => {
                let mut kids: Vec<Id> = xs.iter().map(|&x| canon(x)).collect();
                kids.sort_unstable();
                CNode::Mul(self.intern_span(&kids))
            }
            ENode::Not(x) => CNode::Not(canon(*x)),
            ENode::Squash(x) => CNode::Squash(canon(*x)),
            ENode::Sum(s, x) => CNode::Sum(self.intern_schema(s), canon(*x)),
            ENode::Eq(a, b) => {
                let (a, b) = (canon(*a), canon(*b));
                if a <= b {
                    CNode::Eq(a, b)
                } else {
                    CNode::Eq(b, a)
                }
            }
            ENode::Rel(r, t) => CNode::Rel(self.intern_name(r), canon(*t)),
            ENode::Pred(p, t) => CNode::Pred(self.intern_name(p), canon(*t)),
            ENode::FreeVar(v) => CNode::FreeVar(self.intern_var(v)),
            ENode::Bound(i, s) => CNode::Bound(*i, self.intern_schema(s)),
            ENode::Unit => CNode::Unit,
            ENode::Const(c) => CNode::Const(self.intern_value(c)),
            ENode::Pair(a, b) => CNode::Pair(canon(*a), canon(*b)),
            ENode::Fst(t) => CNode::Fst(canon(*t)),
            ENode::Snd(t) => CNode::Snd(canon(*t)),
            ENode::Fn(f, xs) => {
                let kids: Vec<Id> = xs.iter().map(|&x| canon(x)).collect();
                CNode::Fn(self.intern_name(f), self.intern_span(&kids))
            }
            ENode::Agg(n, s, b) => {
                CNode::Agg(self.intern_name(n), self.intern_schema(s), canon(*b))
            }
        }
    }

    /// Rebuilds a compact node with children replaced by `canon(child)`,
    /// with the same canonical orderings as [`NodeArena::intern`].
    pub(crate) fn canonicalize(&mut self, node: CNode, mut canon: impl FnMut(Id) -> Id) -> CNode {
        match node {
            CNode::Zero
            | CNode::One
            | CNode::FreeVar(_)
            | CNode::Bound(_, _)
            | CNode::Unit
            | CNode::Const(_) => node,
            CNode::Add(s) => {
                let mut kids = self.span_vec(s);
                for k in &mut kids {
                    *k = canon(*k);
                }
                kids.sort_unstable();
                CNode::Add(self.intern_span(&kids))
            }
            CNode::Mul(s) => {
                let mut kids = self.span_vec(s);
                for k in &mut kids {
                    *k = canon(*k);
                }
                kids.sort_unstable();
                CNode::Mul(self.intern_span(&kids))
            }
            CNode::Fn(f, s) => {
                let mut kids = self.span_vec(s);
                for k in &mut kids {
                    *k = canon(*k);
                }
                CNode::Fn(f, self.intern_span(&kids))
            }
            CNode::Not(x) => CNode::Not(canon(x)),
            CNode::Squash(x) => CNode::Squash(canon(x)),
            CNode::Sum(sc, x) => CNode::Sum(sc, canon(x)),
            CNode::Rel(r, x) => CNode::Rel(r, canon(x)),
            CNode::Pred(p, x) => CNode::Pred(p, canon(x)),
            CNode::Fst(x) => CNode::Fst(canon(x)),
            CNode::Snd(x) => CNode::Snd(canon(x)),
            CNode::Agg(n, sc, x) => CNode::Agg(n, sc, canon(x)),
            CNode::Eq(a, b) => {
                let (a, b) = (canon(a), canon(b));
                if a <= b {
                    CNode::Eq(a, b)
                } else {
                    CNode::Eq(b, a)
                }
            }
            CNode::Pair(a, b) => CNode::Pair(canon(a), canon(b)),
        }
    }

    /// Converts a compact node back to the public representation.
    pub(crate) fn enode(&self, node: CNode) -> ENode {
        match node {
            CNode::Zero => ENode::Zero,
            CNode::One => ENode::One,
            CNode::Add(s) => ENode::Add(self.span_vec(s)),
            CNode::Mul(s) => ENode::Mul(self.span_vec(s)),
            CNode::Not(x) => ENode::Not(x),
            CNode::Squash(x) => ENode::Squash(x),
            CNode::Sum(sc, x) => ENode::Sum(self.schemas[sc.0 as usize].clone(), x),
            CNode::Eq(a, b) => ENode::Eq(a, b),
            CNode::Rel(r, x) => ENode::Rel(self.names[r.0 as usize].clone(), x),
            CNode::Pred(p, x) => ENode::Pred(self.names[p.0 as usize].clone(), x),
            CNode::FreeVar(v) => ENode::FreeVar(self.vars[v.0 as usize].clone()),
            CNode::Bound(i, sc) => ENode::Bound(i, self.schemas[sc.0 as usize].clone()),
            CNode::Unit => ENode::Unit,
            CNode::Const(c) => ENode::Const(self.values[c.0 as usize].clone()),
            CNode::Pair(a, b) => ENode::Pair(a, b),
            CNode::Fst(x) => ENode::Fst(x),
            CNode::Snd(x) => ENode::Snd(x),
            CNode::Fn(f, s) => ENode::Fn(self.names[f.0 as usize].clone(), self.span_vec(s)),
            CNode::Agg(n, sc, x) => ENode::Agg(
                self.names[n.0 as usize].clone(),
                self.schemas[sc.0 as usize].clone(),
                x,
            ),
        }
    }

    /// The interned value behind a `Const` payload.
    pub(crate) fn value(&self, v: ValueId) -> &Value {
        &self.values[v.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inline_below_three_children_and_deduped_above() {
        let mut a = NodeArena::new();
        let short = a.intern_span(&[Id(1), Id(2)]);
        assert!(matches!(short, Span::Inline(_, 2)));
        assert_eq!(a.children.len(), 0, "inline spans never touch the buffer");
        let s1 = a.intern_span(&[Id(1), Id(2), Id(3)]);
        let s2 = a.intern_span(&[Id(1), Id(2), Id(3)]);
        assert_eq!(s1, s2, "equal lists intern to one span");
        assert_eq!(a.children.len(), 3);
        let s3 = a.intern_span(&[Id(1), Id(2), Id(4)]);
        assert_ne!(s1, s3);
        assert_eq!(a.span_vec(s1), vec![Id(1), Id(2), Id(3)]);
    }

    #[test]
    fn compact_round_trip_preserves_structure() {
        let mut a = NodeArena::new();
        let n = ENode::Rel("R".into(), Id(7));
        let c = a.intern(&n, |id| id);
        assert_eq!(a.enode(c), n);
        // Equal nodes intern to equal (Copy) compact nodes.
        let c2 = a.intern(&ENode::Rel("R".into(), Id(7)), |id| id);
        assert_eq!(c, c2);
        // map_children semantics: Add children are sorted, Eq oriented.
        let add = a.intern(&ENode::Add(vec![Id(9), Id(3), Id(5)]), |id| id);
        assert_eq!(a.enode(add), ENode::Add(vec![Id(3), Id(5), Id(9)]));
        let eq = a.intern(&ENode::Eq(Id(8), Id(2)), |id| id);
        assert_eq!(a.enode(eq), ENode::Eq(Id(2), Id(8)));
    }
}
