//! Equality-saturation proof search for the UniNomial algebra.
//!
//! The normalization-based tactics of [`uninomial::prove`] follow one
//! fixed rewrite strategy; everything they cannot reach needs bespoke
//! lemma chains. This crate replaces "rules we wrote derivations for"
//! with "anything the axioms reach within budget": an e-graph
//! ([`EGraph`]) seeded with both sides of a goal is saturated under a
//! rewrite set compiled *directly from the trusted axiom catalog*
//! ([`uninomial::lemmas::Lemma`]), and the goal is proved the moment the
//! two seed classes merge. The union-find records a justification for
//! every union, so a successful search replays as an auditable
//! [`ProofTrace`](uninomial::prove::ProofTrace) referencing only `Lemma`
//! axioms — exactly like the normalizer's traces.
//!
//! The pipeline ([`prove::prove_eq_saturate`]):
//!
//! 1. normalize both sides with the trusted normalizer (its rewrites are
//!    already lemma-audited) and apply any declared integrity-constraint
//!    axioms;
//! 2. intern the reified normal forms and seed them into the e-graph as
//!    locally nameless (de Bruijn) e-nodes — α-equivalent inputs merge
//!    for free, and n-ary sorted `+`/`×` nodes decide ACU structurally;
//! 3. run the budgeted saturation loop ([`Solver`]) over the compiled
//!    rewrites until the goal classes merge, the graph saturates, or the
//!    iteration/node budget runs out.
//!
//! The solver is `Send`: the parallel batch engine runs one e-graph per
//! worker. For batch workloads the one-shot [`Solver`] generalizes to a
//! persistent [`Session`] (one per worker, shared across the whole
//! batch): goal answers are memoized with byte-identical traces, new
//! roots seed incrementally with saturation *resuming* rather than
//! restarting, and cross-seed discovery reports equalities between
//! different goals' sides — see [`session`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
pub mod extract;
pub mod graph;
pub mod lang;
pub mod mined;
pub mod prove;
pub mod rewrite;
pub mod session;
pub mod solve;
pub mod unionfind;

pub use extract::{CostFunction, TreeSize};
pub use graph::{EGraph, RebuildMode};
pub use lang::ENode;
pub use mined::{MinedRule, MINED_LABEL_PREFIX};
pub use prove::{
    prove_eq_saturate, prove_eq_saturate_cached, prove_eq_saturate_session, SaturateFailure,
};
pub use session::{Admission, BatchBudget, Session, SessionStats};
pub use solve::{Budget, Outcome, Solver, Stats};
pub use unionfind::Id;
