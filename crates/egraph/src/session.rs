//! Persistent multi-seed saturation sessions.
//!
//! A [`Session`] is the long-lived counterpart of the one-shot
//! [`Solver`]: one e-graph, one compiled rewrite set, and one set of
//! memo caches that live across *many* goals — one session per batch
//! worker, shared across the whole batch. It provides three things the
//! fresh-solver-per-goal pipeline cannot:
//!
//! - **Goal memoization** ([`Session::close_goal`]): a goal is keyed by
//!   its (hash-consed) normalized sides; posing the same obligation
//!   twice returns the recorded verdict *and the byte-identical lemma
//!   trace* without re-running the search. Production query traffic is
//!   heavily repetitive, so this is the headline amortization.
//! - **Incremental multi-seed saturation** ([`Session::add_root`] +
//!   [`Session::resume`]): roots can be added after a saturate pass and
//!   saturation *resumes* from the current graph instead of restarting.
//!   The e-graph's [`generation`](crate::graph::EGraph::generation)
//!   counter makes a resume with no new seeds a strict no-op.
//! - **Cross-seed discovery** ([`Session::discovered`]): with many
//!   goals' sides seeded into one graph, saturation merges classes *of
//!   different goals* — equalities no single-seed search would pose.
//!   These surface as an additive report (`dopcert catalog --discover`),
//!   never as changes to per-goal answers.
//!
//! **Determinism is a hard requirement**: session-mode verdicts and
//! traces must be byte-identical to fresh-solver mode. The session
//! guarantees this *by construction*: every goal is answered by a
//! deterministic goal-scoped derivation (an isolated solver seeded with
//! exactly that goal, just like fresh mode) whose result is memoized;
//! the shared multi-seed graph is a side-channel that accelerates
//! repeats and discovers new equalities but never alters what a goal
//! reports. The memo hit IS the perf win; the shared graph is the
//! discovery win.
//!
//! Budgets are batch-level with per-goal accounting: the shared graph
//! runs under a [`BatchBudget`] whose per-goal iteration cap bounds how
//! much discovery work any one goal may charge, so a runaway goal
//! cannot starve the rest of the batch.

use crate::solve::{Budget, Outcome, Solver, Stats};
use crate::unionfind::Id;
use std::collections::HashMap;
use uninomial::lemmas::Lemma;
use uninomial::normalize::Trace;
use uninomial::syntax::intern::{Interner, UExprId};
use uninomial::UExpr;

/// Batch-level saturation budget for the session's *shared* graph, with
/// per-goal accounting. The goal-scoped derivations that produce
/// verdicts and traces run under the ordinary per-goal [`Budget`]; this
/// budget only bounds the discovery side-channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchBudget {
    /// Total saturation iterations the shared graph may spend across
    /// the whole session.
    pub max_total_iters: usize,
    /// Node cap for the shared graph; once reached, no further roots
    /// are seeded and resumes stop immediately.
    pub max_nodes: usize,
    /// Iteration cap any single goal may charge to the shared graph in
    /// one resume — the starvation guard.
    pub per_goal_iters: usize,
}

impl Default for BatchBudget {
    fn default() -> BatchBudget {
        BatchBudget {
            max_total_iters: 2_048,
            max_nodes: 60_000,
            per_goal_iters: 24,
        }
    }
}

impl BatchBudget {
    /// A batch budget scaled from a per-goal budget: the shared graph
    /// may spend what ~64 fresh goals would, with one goal's resume
    /// capped at one fresh goal's iterations.
    pub fn scaled_from(goal: Budget) -> BatchBudget {
        BatchBudget {
            max_total_iters: goal.max_iters.saturating_mul(64),
            max_nodes: goal.max_nodes.saturating_mul(6),
            per_goal_iters: goal.max_iters,
        }
    }

    /// Admission control against this budget: may a goal that wants
    /// `request_iters` iterations run, given `spent_iters` already
    /// charged to the same account? This is the per-tenant gate the
    /// `dopcert serve` daemon applies before dispatching a request —
    /// [`Admission::PerGoalCap`] rejects a single oversized goal,
    /// [`Admission::Exhausted`] rejects once the cumulative allowance
    /// is gone (so one hot tenant cannot starve the rest).
    pub fn admit(&self, spent_iters: usize, request_iters: usize) -> Admission {
        if request_iters > self.per_goal_iters {
            Admission::PerGoalCap
        } else if spent_iters.saturating_add(request_iters) > self.max_total_iters {
            Admission::Exhausted
        } else {
            Admission::Admit
        }
    }
}

/// Outcome of a [`BatchBudget::admit`] check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Within budget: run the goal and charge its iterations.
    Admit,
    /// The single goal asks for more iterations than the per-goal cap
    /// allows — rejected regardless of how much allowance remains.
    PerGoalCap,
    /// The cumulative allowance is exhausted.
    Exhausted,
}

/// Accounting across the session's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Goals posed through [`Session::close_goal`].
    pub goals: usize,
    /// Goals answered from the memo (no search ran).
    pub memo_hits: usize,
    /// Iterations spent in goal-scoped derivations.
    pub local_iters: usize,
    /// Iterations spent resuming the shared graph.
    pub shared_iters: usize,
    /// Resumes skipped because the shared graph was already saturated
    /// at its current generation (the incremental-rebuild fast path).
    pub resume_noops: usize,
    /// Roots seeded into the shared graph (post-dedup).
    pub roots: usize,
}

/// A tagged seed in the shared graph.
#[derive(Clone, Debug)]
struct Root {
    tag: String,
    class: Id,
    key: UExprId,
}

/// A recorded goal answer: the lemma steps the goal-scoped derivation
/// appended (proved), or how its search ended (unproved).
#[derive(Clone, Debug)]
enum MemoEntry {
    Proved(Vec<(Lemma, String)>),
    Unproved { outcome: Outcome, stats: Stats },
}

/// A persistent saturation session: one e-graph per worker, shared
/// across the whole batch. See the module docs for the contract.
#[derive(Debug)]
pub struct Session {
    goal_budget: Budget,
    batch: BatchBudget,
    /// The shared multi-seed solver (e-graph + rewrites + the
    /// `attempted` oracle memo, all persistent across goals).
    shared: Solver,
    /// Hash-consing arena for goal keys and root dedup.
    interner: Interner,
    memo: HashMap<(UExprId, UExprId, bool), MemoEntry>,
    roots: Vec<Root>,
    root_classes: HashMap<UExprId, Id>,
    /// Shared-graph generation at which the last resume ended
    /// [`Outcome::Saturated`]; `None` until then or after new seeds.
    clean_at: Option<u64>,
    stats: SessionStats,
}

impl Session {
    /// A session whose goal-scoped derivations run under `goal_budget`,
    /// with the default batch budget scaled from it.
    pub fn new(goal_budget: Budget) -> Session {
        Session::with_batch_budget(goal_budget, BatchBudget::scaled_from(goal_budget))
    }

    /// A session with an explicit batch budget for the shared graph.
    pub fn with_batch_budget(goal_budget: Budget, batch: BatchBudget) -> Session {
        Session {
            goal_budget,
            batch,
            shared: Solver::new(goal_budget),
            interner: Interner::new(),
            memo: HashMap::new(),
            roots: Vec::new(),
            root_classes: HashMap::new(),
            clean_at: None,
            stats: SessionStats::default(),
        }
    }

    /// The per-goal budget of the goal-scoped derivations.
    pub fn goal_budget(&self) -> Budget {
        self.goal_budget
    }

    /// Lifetime accounting.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Answers the goal `el = er` (already-normalized reified sides;
    /// `prop` marks a propositional goal, which additionally seeds the
    /// squash-wrapped sides exactly as the fresh pipeline does),
    /// appending the proving lemma steps to `trace` on success.
    ///
    /// The answer — verdict *and* appended steps — is byte-identical to
    /// what a fresh [`Solver`] run on exactly this goal produces: a
    /// memo miss runs that isolated derivation and records it; a memo
    /// hit replays the recording. Afterwards the goal's sides are
    /// seeded into the shared graph and saturation resumes under the
    /// remaining batch budget (the discovery side-channel).
    ///
    /// # Errors
    ///
    /// Returns the goal-scoped search's terminal outcome and statistics
    /// when the sides never merge.
    pub fn close_goal(
        &mut self,
        el: &UExpr,
        er: &UExpr,
        prop: bool,
        trace: &mut Trace,
    ) -> Result<(), (Outcome, Stats)> {
        let _span = telemetry::span("egraph.goal");
        self.stats.goals += 1;
        let key = (self.interner.intern(el), self.interner.intern(er), prop);
        if let Some(entry) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            telemetry::count("memo.goal.hit", 1);
            telemetry::profile_count("session", "goal_memo_hits", 1);
            return match entry {
                MemoEntry::Proved(steps) => {
                    for (lemma, note) in steps {
                        trace.step(*lemma, note.clone());
                    }
                    Ok(())
                }
                MemoEntry::Unproved { outcome, stats } => Err((*outcome, *stats)),
            };
        }
        telemetry::count("memo.goal.miss", 1);
        // Goal-scoped derivation: an isolated solver seeded with exactly
        // this goal — the same construction as fresh-solver mode, so the
        // verdict and trace are identical by construction.
        let mut solver = Solver::new(self.goal_budget);
        solver.reserve_names_above(el.max_var_id().max(er.max_var_id()));
        let l = solver.seed_expr(el);
        let r = solver.seed_expr(er);
        if prop {
            solver.seed_expr(&UExpr::squash(el.clone()));
            solver.seed_expr(&UExpr::squash(er.clone()));
        }
        let (outcome, stats) = solver.run(l, r);
        self.stats.local_iters += stats.iters;
        telemetry::profile_count("session", "goal_derivations", 1);
        telemetry::profile_count("session", "local_iters", stats.iters as u64);
        let result = if outcome == Outcome::Proved {
            let mark = trace.len();
            solver.explain_into(l, r, trace);
            let steps = trace.steps()[mark..].to_vec();
            self.memo.insert(key, MemoEntry::Proved(steps));
            Ok(())
        } else {
            self.memo
                .insert(key, MemoEntry::Unproved { outcome, stats });
            Err((outcome, stats))
        };
        // Discovery side-channel: seed both sides into the shared graph.
        // Seeding is hash-consing only — saturation of the shared graph
        // is LAZY (it runs when discovery is queried), so goals that
        // never consult discovery pay nothing beyond the seed.
        let n = self.stats.goals;
        self.add_root(format!("goal{n}/lhs"), el);
        self.add_root(format!("goal{n}/rhs"), er);
        result
    }

    /// Seeds a tagged root into the shared graph, returning its class.
    /// Structurally identical roots are deduplicated (the tag is still
    /// recorded, so discovery can report both names); once the batch
    /// node cap is reached, new structure is no longer seeded and
    /// `None` is returned.
    pub fn add_root(&mut self, tag: impl Into<String>, expr: &UExpr) -> Option<Id> {
        let key = self.interner.intern(expr);
        if let Some(&class) = self.root_classes.get(&key) {
            self.roots.push(Root {
                tag: tag.into(),
                class,
                key,
            });
            return Some(class);
        }
        if self.shared.egraph().node_count() >= self.batch.max_nodes {
            return None;
        }
        self.shared.reserve_names_above(expr.max_var_id());
        let class = self.shared.seed_interned(&self.interner, key);
        self.root_classes.insert(key, class);
        self.roots.push(Root {
            tag: tag.into(),
            class,
            key,
        });
        self.stats.roots += 1;
        // New structure invalidates the clean marker unless seeding
        // created no nodes (fully hash-consed into existing classes).
        if self.clean_at != Some(self.shared.egraph().generation()) {
            self.clean_at = None;
        }
        Some(class)
    }

    /// Resumes saturation of the shared graph under the remaining batch
    /// budget (capped per goal). A resume with no graph changes since
    /// the last full saturation is a no-op.
    pub fn resume(&mut self) -> (Outcome, Stats) {
        let _span = telemetry::span("egraph.resume");
        let generation = self.shared.egraph().generation();
        if self.clean_at == Some(generation) {
            self.stats.resume_noops += 1;
            let stats = Stats {
                iters: 0,
                nodes: self.shared.egraph().node_count(),
                unions: self.shared.egraph().union_count(),
            };
            return (Outcome::Saturated, stats);
        }
        let remaining = self
            .batch
            .max_total_iters
            .saturating_sub(self.stats.shared_iters);
        let iters = remaining.min(self.batch.per_goal_iters);
        if iters == 0 {
            let stats = Stats {
                iters: 0,
                nodes: self.shared.egraph().node_count(),
                unions: self.shared.egraph().union_count(),
            };
            return (Outcome::IterBudget, stats);
        }
        let budget = Budget {
            max_iters: iters,
            max_nodes: self.batch.max_nodes,
            oracle_calls_per_iter: self.goal_budget.oracle_calls_per_iter,
        };
        let (outcome, stats) = self.shared.run_with_budget(None, budget);
        self.stats.shared_iters += stats.iters;
        telemetry::profile_count("session", "shared_iters", stats.iters as u64);
        if outcome == Outcome::Saturated {
            self.clean_at = Some(self.shared.egraph().generation());
        }
        (outcome, stats)
    }

    /// Whether two previously returned root classes are currently known
    /// equal in the shared graph.
    pub fn proved(&mut self, a: Id, b: Id) -> bool {
        self.shared.egraph().same(a, b)
    }

    /// Appends the lemma chain that merged `a` and `b` in the shared
    /// graph to `trace` (Lemma-only, replayable per goal). Returns
    /// `false` when the classes are not equal.
    pub fn explain_into(&mut self, a: Id, b: Id, trace: &mut Trace) -> bool {
        self.shared.explain_into(a, b, trace)
    }

    /// The shared solver, for extraction-style consumers.
    pub fn shared_solver(&mut self) -> &mut Solver {
        &mut self.shared
    }

    /// Drains the remaining batch budget: resumes shared saturation
    /// until the graph saturates, a node/iteration budget runs out, or
    /// nothing changes. This is what discovery consumers call before
    /// reading equalities; per-resume caps still apply, so accounting
    /// stays per-call.
    pub fn saturate_shared(&mut self) -> Outcome {
        loop {
            let before = self.stats.shared_iters;
            let (outcome, _) = self.resume();
            match outcome {
                Outcome::IterBudget if self.stats.shared_iters > before => continue,
                other => return other,
            }
        }
    }

    /// Cross-seed discovery: pairs of distinct tagged roots whose
    /// classes are equal in the shared graph, sorted by tag for a
    /// deterministic report. The shared graph is saturated first
    /// (lazily, under the remaining batch budget). Roots that interned
    /// to the same expression count too — two differently-tagged seeds
    /// normalizing to one expression is itself a discovery — but the
    /// pair is flagged so consumers can set them apart from
    /// saturation-proved equalities. Returns `(tag_a, tag_b,
    /// structural)` with `structural = true` for the same-expression
    /// case.
    pub fn discovered(&mut self) -> Vec<(String, String, bool)> {
        self.saturate_shared();
        let mut out = Vec::new();
        for i in 0..self.roots.len() {
            for j in (i + 1)..self.roots.len() {
                let (a, b) = (self.roots[i].class, self.roots[j].class);
                if self.shared.egraph().same(a, b) {
                    let structural = self.roots[i].key == self.roots[j].key;
                    let (ki, kj) = (self.roots[i].key.index(), self.roots[j].key.index());
                    let (ta, tb) = (self.roots[i].tag.clone(), self.roots[j].tag.clone());
                    let (ta, tb) = if ta <= tb { (ta, tb) } else { (tb, ta) };
                    if ta == tb {
                        continue;
                    }
                    // Canonical (lhs, rhs) interned-id pair first: the
                    // worklist order survives tag renames, and
                    // orientation-symmetric duplicates (same expression
                    // pair seeded under swapped tags) land adjacent so
                    // the id-keyed dedup below removes them.
                    out.push((ki.min(kj), ki.max(kj), ta, tb, structural));
                }
            }
        }
        out.sort();
        out.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1) && a.4 == b.4);
        out.into_iter()
            .map(|(_, _, ta, tb, s)| (ta, tb, s))
            .collect()
    }

    /// The discovery worklist as expressions: every merged pair of
    /// distinct roots whose *interned keys* differ, read back from the
    /// session interner, deduped by canonical key pair and sorted by it.
    /// This is the rule miner's input — tags are irrelevant to mining,
    /// so structurally-equal seeds (same key under two tags) are
    /// skipped rather than flagged.
    pub fn discovered_exprs(&mut self) -> Vec<(UExpr, UExpr)> {
        self.saturate_shared();
        let mut keys: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.roots.len() {
            for j in (i + 1)..self.roots.len() {
                let (a, b) = (self.roots[i].class, self.roots[j].class);
                let (ki, kj) = (self.roots[i].key.index(), self.roots[j].key.index());
                if ki != kj && self.shared.egraph().same(a, b) {
                    keys.push((ki.min(kj), ki.max(kj)));
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let ids: std::collections::HashMap<usize, _> =
            self.roots.iter().map(|r| (r.key.index(), r.key)).collect();
        keys.into_iter()
            .filter_map(|(ka, kb)| {
                let (ia, ib) = (ids.get(&ka)?, ids.get(&kb)?);
                Some((self.interner.extract(*ia), self.interner.extract(*ib)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uninomial::syntax::{Term, UExpr};

    fn rel(name: &str) -> UExpr {
        UExpr::rel(name, Term::Unit)
    }

    #[test]
    fn admission_control_orders_its_rejections() {
        let budget = BatchBudget {
            max_total_iters: 100,
            max_nodes: 1000,
            per_goal_iters: 24,
        };
        assert_eq!(budget.admit(0, 24), Admission::Admit);
        assert_eq!(budget.admit(76, 24), Admission::Admit);
        // One oversized goal is rejected even with a full allowance.
        assert_eq!(budget.admit(0, 25), Admission::PerGoalCap);
        // A within-cap goal is rejected once the allowance is gone.
        assert_eq!(budget.admit(77, 24), Admission::Exhausted);
        assert_eq!(budget.admit(usize::MAX, 1), Admission::Exhausted);
    }

    #[test]
    fn memo_replays_identical_traces() {
        let mut session = Session::new(Budget::default());
        let a = UExpr::mul(rel("R"), UExpr::add(rel("S"), rel("T")));
        let b = UExpr::add(
            UExpr::mul(rel("R"), rel("S")),
            UExpr::mul(rel("R"), rel("T")),
        );
        let mut t1 = Trace::new();
        session.close_goal(&a, &b, false, &mut t1).expect("proves");
        let mut t2 = Trace::new();
        session.close_goal(&a, &b, false, &mut t2).expect("proves");
        assert_eq!(t1.steps(), t2.steps(), "memo hit must replay the trace");
        assert_eq!(session.stats().goals, 2);
        assert_eq!(session.stats().memo_hits, 1);
    }

    #[test]
    fn goal_answer_matches_fresh_solver() {
        let a = UExpr::mul(rel("R"), UExpr::add(rel("S"), rel("T")));
        let b = UExpr::add(
            UExpr::mul(rel("R"), rel("S")),
            UExpr::mul(rel("R"), rel("T")),
        );
        // Fresh solver on exactly this goal.
        let mut solver = Solver::new(Budget::default());
        solver.reserve_names_above(a.max_var_id().max(b.max_var_id()));
        let l = solver.seed_expr(&a);
        let r = solver.seed_expr(&b);
        let (outcome, _) = solver.run(l, r);
        assert_eq!(outcome, Outcome::Proved);
        let mut fresh = Trace::new();
        solver.explain_into(l, r, &mut fresh);
        // Session answer — even after unrelated goals polluted it.
        let mut session = Session::new(Budget::default());
        let mut scratch = Trace::new();
        let _ = session.close_goal(&rel("X"), &rel("Y"), false, &mut scratch);
        let mut via_session = Trace::new();
        session
            .close_goal(&a, &b, false, &mut via_session)
            .expect("proves");
        assert_eq!(fresh.steps(), via_session.steps());
    }

    #[test]
    fn resume_without_new_seeds_is_a_noop() {
        let mut session = Session::new(Budget::default());
        session.add_root("a", &UExpr::mul(rel("R"), rel("S")));
        session.resume();
        let before = session.stats();
        let (outcome, _) = session.resume();
        assert_eq!(outcome, Outcome::Saturated);
        assert_eq!(session.stats().resume_noops, before.resume_noops + 1);
        assert_eq!(session.stats().shared_iters, before.shared_iters);
    }

    #[test]
    fn cross_seed_discovery_reports_merged_roots() {
        let mut session = Session::new(Budget::default());
        let lhs = UExpr::mul(rel("R"), UExpr::add(rel("S"), rel("T")));
        let rhs = UExpr::add(
            UExpr::mul(rel("S"), rel("R")),
            UExpr::mul(rel("T"), rel("R")),
        );
        session.add_root("rule-a/lhs", &lhs);
        session.add_root("rule-b/rhs", &rhs);
        session.resume();
        let found = session.discovered();
        assert!(
            found.contains(&("rule-a/lhs".into(), "rule-b/rhs".into(), false)),
            "{found:?}"
        );
        // Same-expression roots under different tags are discoveries
        // too, flagged structural.
        session.add_root("rule-c/lhs", &lhs);
        let found = session.discovered();
        assert!(
            found.contains(&("rule-a/lhs".into(), "rule-c/lhs".into(), true)),
            "{found:?}"
        );
    }

    #[test]
    fn per_goal_cap_bounds_one_resume() {
        let batch = BatchBudget {
            max_total_iters: 100,
            max_nodes: 10_000,
            per_goal_iters: 1,
        };
        let mut session = Session::with_batch_budget(Budget::default(), batch);
        // A root with rewrite work to do: one resume may spend at most
        // one iteration.
        session.add_root("a", &UExpr::mul(rel("R"), UExpr::add(rel("S"), rel("T"))));
        let (_, stats) = session.resume();
        assert!(stats.iters <= 1, "{stats:?}");
    }
}
