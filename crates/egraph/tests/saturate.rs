//! End-to-end saturation proofs of the goals the normalization-based
//! tactics close, mirroring the tests of `uninomial::prove` — every
//! goal class (syntactic, equational, deductive) must fall to the
//! generic e-graph search under the default budget.

use egraph::solve::Budget;
use egraph::{prove_eq_saturate, SaturateFailure};
use relalg::{BaseType, Schema};
use uninomial::axioms::RelAxiom;
use uninomial::prove::Method;
use uninomial::syntax::{Term, UExpr, Var, VarGen};

fn leaf_int() -> Schema {
    Schema::leaf(BaseType::Int)
}

fn prove(lhs: &UExpr, rhs: &UExpr, gen: &mut VarGen) -> Result<uninomial::Proof, SaturateFailure> {
    prove_eq_saturate(lhs, rhs, &[], gen, Budget::default())
}

#[test]
fn fig1_union_selection_distributes() {
    let mut g = VarGen::new();
    let t = g.fresh(leaf_int());
    let r = UExpr::rel("R", Term::var(&t));
    let s = UExpr::rel("S", Term::var(&t));
    let b = UExpr::pred("b", Term::var(&t));
    let lhs = UExpr::mul(UExpr::add(r.clone(), s.clone()), b.clone());
    let rhs = UExpr::add(UExpr::mul(r, b.clone()), UExpr::mul(s, b));
    let proof = prove(&lhs, &rhs, &mut g).expect("Fig. 1 rule by saturation");
    assert_eq!(proof.method(), Method::Saturate);
}

#[test]
fn fig2_self_join_distinct() {
    // The deductive flagship: ‖Σt1,t2. (t = a t1)(a t1 = a t2) R t1 R t2‖
    // = ‖Σt0. (t = a t0) R t0‖.
    let mut g = VarGen::new();
    let t = g.fresh(leaf_int());
    let t0 = g.fresh(leaf_int());
    let t1 = g.fresh(leaf_int());
    let t2 = g.fresh(leaf_int());
    let a = |v: &Var| Term::func("a", vec![Term::var(v)]);
    let lhs = UExpr::squash(UExpr::sum(
        t1.clone(),
        UExpr::sum(
            t2.clone(),
            UExpr::product([
                UExpr::eq(Term::var(&t), a(&t1)),
                UExpr::eq(a(&t1), a(&t2)),
                UExpr::rel("R", Term::var(&t1)),
                UExpr::rel("R", Term::var(&t2)),
            ]),
        ),
    ));
    let rhs = UExpr::squash(UExpr::sum(
        t0.clone(),
        UExpr::mul(
            UExpr::eq(Term::var(&t), a(&t0)),
            UExpr::rel("R", Term::var(&t0)),
        ),
    ));
    let proof = prove(&lhs, &rhs, &mut g).expect("Fig. 2 rule by saturation");
    assert_eq!(proof.method(), Method::Saturate);
    assert!(proof.steps() > 1);
}

#[test]
fn unequal_relations_fail() {
    let mut g = VarGen::new();
    let t = g.fresh(leaf_int());
    let r = UExpr::rel("R", Term::var(&t));
    let s = UExpr::rel("S", Term::var(&t));
    let err = prove(&r, &s, &mut g).unwrap_err();
    assert!(err.to_string().contains("not proved"), "{err}");
}

#[test]
fn key_axiom_enables_self_join_identity() {
    let mut g = VarGen::new();
    let t = g.fresh(leaf_int());
    let t2 = g.fresh(leaf_int());
    let k = |v: &Var| Term::func("k", vec![Term::var(v)]);
    let lhs = UExpr::sum(
        t2.clone(),
        UExpr::product([
            UExpr::rel("R", Term::var(&t)),
            UExpr::rel("R", Term::var(&t2)),
            UExpr::eq(k(&t), k(&t2)),
        ]),
    );
    let rhs = UExpr::rel("R", Term::var(&t));
    assert!(
        prove(&lhs, &rhs, &mut g).is_err(),
        "unprovable without axiom"
    );
    let axioms = vec![RelAxiom::Key {
        rel: "R".into(),
        key_fn: "k".into(),
    }];
    let proof = prove_eq_saturate(&lhs, &rhs, &axioms, &mut g, Budget::default())
        .expect("key axiom closes it");
    assert_eq!(proof.method(), Method::Saturate);
}

#[test]
fn or_of_exists_splits() {
    // ‖ ‖ΣS‖ + ‖ΣT‖ ‖ = ‖Σ(S + T)‖.
    let mut g = VarGen::new();
    let s1 = g.fresh(leaf_int());
    let s2 = g.fresh(leaf_int());
    let s3 = g.fresh(leaf_int());
    let lhs = UExpr::squash(UExpr::add(
        UExpr::squash(UExpr::sum(s1.clone(), UExpr::rel("S", Term::var(&s1)))),
        UExpr::squash(UExpr::sum(s2.clone(), UExpr::rel("T", Term::var(&s2)))),
    ));
    let rhs = UExpr::squash(UExpr::sum(
        s3.clone(),
        UExpr::add(
            UExpr::rel("S", Term::var(&s3)),
            UExpr::rel("T", Term::var(&s3)),
        ),
    ));
    assert!(prove(&lhs, &rhs, &mut g).is_ok());
}

#[test]
fn except_self_is_zero() {
    let mut g = VarGen::new();
    let t = g.fresh(leaf_int());
    let r = UExpr::rel("R", Term::var(&t));
    let lhs = UExpr::mul(r.clone(), UExpr::not(UExpr::squash(r)));
    let proof = prove(&lhs, &UExpr::Zero, &mut g).unwrap();
    assert_eq!(proof.method(), Method::Saturate);
}

#[test]
fn semijoin_introduction() {
    // θ(t) × R2(t.1) × R1(t.2)
    //   = θ(t) × R2(t.1) × R1(t.2) × ‖Σt1. θ((t.1,t1)) × R1(t1)‖.
    let mut g = VarGen::new();
    let t = g.fresh(Schema::node(leaf_int(), leaf_int()));
    let t1 = g.fresh(leaf_int());
    let theta = |arg: Term| UExpr::pred("theta", arg);
    let base = UExpr::product([
        theta(Term::var(&t)),
        UExpr::rel("R2", Term::fst(Term::var(&t))),
        UExpr::rel("R1", Term::snd(Term::var(&t))),
    ]);
    let semijoin = UExpr::squash(UExpr::sum(
        t1.clone(),
        UExpr::mul(
            theta(Term::pair(Term::fst(Term::var(&t)), Term::var(&t1))),
            UExpr::rel("R1", Term::var(&t1)),
        ),
    ));
    let rhs = UExpr::mul(base.clone(), semijoin);
    assert!(prove(&base, &rhs, &mut g).is_ok(), "semijoin introduction");
}

#[test]
fn join_commutativity_via_binder_interchange() {
    // Σx,y. R(x) × S(y) × (t = (x,y))  vs  Σy,x. S(y) × R(x) × (t = (x,y)).
    let mut g = VarGen::new();
    let t = g.fresh(Schema::node(leaf_int(), leaf_int()));
    let x = g.fresh(leaf_int());
    let y = g.fresh(leaf_int());
    let lhs = UExpr::sum(
        x.clone(),
        UExpr::sum(
            y.clone(),
            UExpr::product([
                UExpr::rel("R", Term::var(&x)),
                UExpr::rel("S", Term::var(&y)),
                UExpr::eq(Term::var(&t), Term::pair(Term::var(&x), Term::var(&y))),
            ]),
        ),
    );
    let x2 = g.fresh(leaf_int());
    let y2 = g.fresh(leaf_int());
    let rhs = UExpr::sum(
        y2.clone(),
        UExpr::sum(
            x2.clone(),
            UExpr::product([
                UExpr::rel("S", Term::var(&y2)),
                UExpr::rel("R", Term::var(&x2)),
                UExpr::eq(Term::var(&t), Term::pair(Term::var(&x2), Term::var(&y2))),
            ]),
        ),
    );
    assert!(prove(&lhs, &rhs, &mut g).is_ok());
}

#[test]
fn multiplicity_is_respected() {
    // R(x) ≠ R(x) × R(x): saturation must NOT merge these.
    let mut g = VarGen::new();
    let x = g.fresh(leaf_int());
    let r = UExpr::rel("R", Term::var(&x));
    let rr = UExpr::mul(r.clone(), r.clone());
    assert!(prove(&r, &rr, &mut g).is_err(), "bag semantics");
}

#[test]
fn squashed_multiplicity_does_not_matter() {
    let mut g = VarGen::new();
    let x = g.fresh(leaf_int());
    let r = UExpr::rel("R", Term::var(&x));
    let lhs = UExpr::squash(r.clone());
    let rhs = UExpr::squash(UExpr::mul(r.clone(), r));
    assert!(prove(&lhs, &rhs, &mut g).is_ok());
}

#[test]
fn trace_references_only_lemma_axioms() {
    let mut g = VarGen::new();
    let t = g.fresh(leaf_int());
    let r = UExpr::rel("R", Term::var(&t));
    let s = UExpr::rel("S", Term::var(&t));
    let lhs = UExpr::add(r.clone(), s.clone());
    let rhs = UExpr::add(s, r);
    let proof = prove(&lhs, &rhs, &mut g).expect("+-commutativity");
    // Every step is (Lemma, note) by construction; the proof must be
    // non-empty and display cleanly.
    assert!(proof.steps() >= 1);
    let shown = proof.to_string();
    assert!(shown.contains("saturation"), "{shown}");
}
