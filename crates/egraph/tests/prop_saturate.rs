//! Property-based soundness of equality saturation: whenever the
//! e-graph solver reports two expressions equal, the random-
//! interpretation oracle of `uninomial::eval` must agree on every
//! sampled valuation — any unsound rewrite (or unsound oracle
//! delegation) shows up as an evaluation mismatch.
//!
//! Completeness is additionally smoke-tested on scrambled copies:
//! semantics-preserving syntactic shuffles (AC reordering, unit
//! injection, squash duplication, triple negation) must always prove.

use egraph::prove_eq_saturate;
use egraph::solve::Budget;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::{BaseType, Card, Relation, Schema, Tuple, Value};
use uninomial::eval::{eval, Env, Interp};
use uninomial::syntax::{Term, UExpr, Var, VarGen};

/// Random well-scoped expression generator (the `prop_normalize`
/// pattern: sums are guarded by a relation atom so evaluation over the
/// finite sample domain stays meaningful).
struct ExprGen {
    rng: StdRng,
    gen: VarGen,
}

impl ExprGen {
    fn new(seed: u64) -> ExprGen {
        ExprGen {
            rng: StdRng::seed_from_u64(seed),
            gen: VarGen::new(),
        }
    }

    fn term(&mut self, scope: &[Var]) -> Term {
        let leafy: Vec<&Var> = scope
            .iter()
            .filter(|v| matches!(v.schema, Schema::Leaf(_)))
            .collect();
        match self.rng.gen_range(0..5) {
            0 => Term::int(self.rng.gen_range(-2..=2)),
            _ if !leafy.is_empty() => Term::var(leafy[self.rng.gen_range(0..leafy.len())]),
            _ => Term::int(self.rng.gen_range(-2..=2)),
        }
    }

    fn expr(&mut self, scope: &[Var], depth: usize) -> UExpr {
        if depth == 0 {
            return self.atom(scope);
        }
        match self.rng.gen_range(0..8) {
            0 => UExpr::add(self.expr(scope, depth - 1), self.expr(scope, depth - 1)),
            1 => UExpr::mul(self.expr(scope, depth - 1), self.expr(scope, depth - 1)),
            2 => UExpr::not(self.expr(scope, depth - 1)),
            3 => UExpr::squash(self.expr(scope, depth - 1)),
            4 | 5 => {
                let v = self.gen.fresh(Schema::leaf(BaseType::Int));
                let mut inner = scope.to_vec();
                inner.push(v.clone());
                let body = UExpr::mul(
                    UExpr::rel(
                        if self.rng.gen_bool(0.5) { "R" } else { "S" },
                        Term::var(&v),
                    ),
                    self.expr(&inner, depth - 1),
                );
                UExpr::sum(v, body)
            }
            _ => self.atom(scope),
        }
    }

    fn atom(&mut self, scope: &[Var]) -> UExpr {
        match self.rng.gen_range(0..5) {
            0 => UExpr::One,
            1 => UExpr::Zero,
            2 => UExpr::eq(self.term(scope), self.term(scope)),
            3 => UExpr::pred("b", self.term(scope)),
            _ => UExpr::rel("R", self.term(scope)),
        }
    }

    /// A semantics-preserving syntactic shuffle of `e`.
    fn scramble(&mut self, e: &UExpr) -> UExpr {
        let e = match e {
            UExpr::Add(a, b) => {
                let (a, b) = (self.scramble(a), self.scramble(b));
                if self.rng.gen_bool(0.5) {
                    UExpr::add(b, a)
                } else {
                    UExpr::add(a, b)
                }
            }
            UExpr::Mul(a, b) => {
                let (a, b) = (self.scramble(a), self.scramble(b));
                if self.rng.gen_bool(0.5) {
                    UExpr::mul(b, a)
                } else {
                    UExpr::mul(a, b)
                }
            }
            UExpr::Not(x) => {
                let x = self.scramble(x);
                if self.rng.gen_bool(0.3) {
                    UExpr::not(UExpr::not(UExpr::not(x)))
                } else {
                    UExpr::not(x)
                }
            }
            UExpr::Squash(x) => {
                let x = self.scramble(x);
                if self.rng.gen_bool(0.3) {
                    UExpr::squash(UExpr::squash(x))
                } else {
                    UExpr::squash(x)
                }
            }
            UExpr::Sum(v, b) => UExpr::Sum(v.clone(), Box::new(self.scramble(b))),
            other => other.clone(),
        };
        if self.rng.gen_bool(0.2) {
            UExpr::mul(e, UExpr::One)
        } else if self.rng.gen_bool(0.1) {
            UExpr::add(e, UExpr::Zero)
        } else {
            e
        }
    }
}

fn interp(seed: u64) -> Interp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Relation::empty(Schema::leaf(BaseType::Int));
    let mut s = Relation::empty(Schema::leaf(BaseType::Int));
    for v in -2..=2i64 {
        let m = rng.gen_range(0..3u64);
        if m > 0 {
            r.insert_with(Tuple::int(v), Card::Fin(m));
        }
        let m = rng.gen_range(0..3u64);
        if m > 0 {
            s.insert_with(Tuple::int(v), Card::Fin(m));
        }
    }
    let threshold = rng.gen_range(-1..=1i64);
    Interp::new()
        .with_rel("R", r)
        .with_rel("S", s)
        .with_pred("b", move |t: &Tuple| {
            t.value().and_then(Value::as_int).map(|n| n > threshold) == Some(true)
        })
}

/// Checks the oracle on every free-variable valuation drawn from the
/// sample domain (free vars here are always int leaves).
fn oracle_agrees(a: &UExpr, b: &UExpr, scope: &Var, seed: u64) -> Result<(), String> {
    let i = interp(seed);
    for val in -2..=2i64 {
        let env: Env = [(scope.id, Tuple::int(val))].into_iter().collect();
        let va = eval(a, &i, &env).map_err(|e| e.to_string())?;
        let vb = eval(b, &i, &env).map_err(|e| e.to_string())?;
        if va != vb {
            return Err(format!(
                "interp seed {seed}, t={val}: {va:?} vs {vb:?} for\n  {a}\n  {b}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Scrambled copies must prove, and the proof must be sound under
    // the oracle.
    #[test]
    fn scrambled_copies_prove_and_are_sound(seed in 0u64..1_000_000) {
        let mut eg = ExprGen::new(seed);
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let a = eg.expr(std::slice::from_ref(&scope), 3);
        let b = eg.scramble(&a);
        let mut gen = VarGen::new();
        gen.reserve_above(a.max_var_id().max(b.max_var_id()));
        let proof = prove_eq_saturate(&a, &b, &[], &mut gen, Budget::default());
        prop_assert!(
            proof.is_ok(),
            "scramble must prove (seed {}): {:?}\n  {}\n  {}",
            seed,
            proof.err().map(|e| e.to_string()),
            a,
            b
        );
        for interp_seed in [seed, seed ^ 0xFFFF, seed.wrapping_mul(31)] {
            if let Err(msg) = oracle_agrees(&a, &b, &scope, interp_seed) {
                prop_assert!(false, "oracle disagrees on a PROVED pair: {}", msg);
            }
        }
    }

    // For independent random pairs, a positive saturation verdict must
    // be confirmed by the oracle on every sampled interpretation.
    #[test]
    fn positive_verdicts_on_random_pairs_are_sound(seed in 0u64..1_000_000) {
        let mut eg = ExprGen::new(seed);
        let scope = eg.gen.fresh(Schema::leaf(BaseType::Int));
        let a = eg.expr(std::slice::from_ref(&scope), 2);
        let b = eg.expr(std::slice::from_ref(&scope), 2);
        let mut gen = VarGen::new();
        gen.reserve_above(a.max_var_id().max(b.max_var_id()));
        // Small budget: this test cares about soundness, not coverage.
        if prove_eq_saturate(&a, &b, &[], &mut gen, Budget::new(12, 4_000)).is_ok() {
            for interp_seed in [seed, seed ^ 0xBEEF, seed.wrapping_mul(17)] {
                if let Err(msg) = oracle_agrees(&a, &b, &scope, interp_seed) {
                    prop_assert!(false, "unsound saturation proof: {}", msg);
                }
            }
        }
    }
}
