//! Differential property test for the batched congruence rebuild: on a
//! generated CQ corpus, saturation under the deferred (batched) rebuild
//! must be observationally identical to the rebuild-per-union baseline —
//! same verdict, same extracted canonical forms, same replayed lemma
//! trace — and each mode must be deterministic across runs.
//!
//! The corpus is the realistic one: conjunctive-query pairs rendered
//! through the HoTTSQL front end and denoted into UniNomial exactly the
//! way the prover pipeline does it, plus cross pairs (lhs of one pair
//! against lhs of another) so negative verdicts are exercised too.

use cq::generate::equivalent_pairs;
use egraph::graph::RebuildMode;
use egraph::solve::{Budget, Outcome, Solver};
use egraph::TreeSize;
use hottsql::denote::{denote_closed_query, denote_query};
use hottsql::env::QueryEnv;
use proptest::prelude::*;
use relalg::{BaseType, Schema};
use std::collections::HashMap;
use uninomial::lemmas::Lemma;
use uninomial::normalize::Trace;
use uninomial::syntax::{Term, UExpr, Var, VarGen};

/// Denotes a generated CQ pair into a UniNomial goal (the dopcert
/// `denote_instance` shape: one shared `VarGen`, the rhs indexed by the
/// lhs's output tuple variable).
fn denote_pair(
    qa: &hottsql::ast::Query,
    qb: &hottsql::ast::Query,
    env: &QueryEnv,
) -> (UExpr, UExpr) {
    let mut gen = VarGen::new();
    let (t, ea) = denote_closed_query(qa, env, &mut gen).expect("lhs denotes");
    let eb = denote_query(
        qb,
        env,
        &Schema::Empty,
        &Term::Unit,
        &Term::var(&t),
        &mut gen,
    )
    .expect("rhs denotes");
    (ea, eb)
}

/// Renames every variable, in first-occurrence order, to a canonical
/// sequence — the two modes may consume different numbers of fresh ids
/// (an oracle call skipped in one mode but not the other still burns
/// names), so raw renderings are only comparable up to α.
fn alpha(e: &UExpr, map: &mut HashMap<u32, u32>) -> UExpr {
    fn var(v: &Var, map: &mut HashMap<u32, u32>) -> Var {
        let next = map.len() as u32;
        Var {
            id: *map.entry(v.id).or_insert(next),
            schema: v.schema.clone(),
        }
    }
    fn term(t: &Term, map: &mut HashMap<u32, u32>) -> Term {
        match t {
            Term::Var(v) => Term::Var(var(v, map)),
            Term::Unit => Term::Unit,
            Term::Const(c) => Term::Const(c.clone()),
            Term::Pair(a, b) => Term::pair(term(a, map), term(b, map)),
            Term::Fst(x) => Term::fst(term(x, map)),
            Term::Snd(x) => Term::snd(term(x, map)),
            Term::Fn(f, args) => Term::Fn(f.clone(), args.iter().map(|a| term(a, map)).collect()),
            Term::Agg(n, v, b) => {
                let v = var(v, map);
                Term::agg(n.clone(), v, alpha(b, map))
            }
        }
    }
    match e {
        UExpr::Zero => UExpr::Zero,
        UExpr::One => UExpr::One,
        UExpr::Add(a, b) => UExpr::add(alpha(a, map), alpha(b, map)),
        UExpr::Mul(a, b) => UExpr::mul(alpha(a, map), alpha(b, map)),
        UExpr::Not(x) => UExpr::not(alpha(x, map)),
        UExpr::Squash(x) => UExpr::squash(alpha(x, map)),
        UExpr::Sum(v, b) => {
            let v = var(v, map);
            UExpr::sum(v, alpha(b, map))
        }
        UExpr::Eq(s, t) => UExpr::eq(term(s, map), term(t, map)),
        UExpr::Rel(r, t) => UExpr::Rel(r.clone(), term(t, map)),
        UExpr::Pred(p, t) => UExpr::Pred(p.clone(), term(t, map)),
    }
}

/// One saturation run's full observable surface.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    proved: bool,
    /// α-canonical renderings of the best extraction of each side
    /// (jointly renamed, so cross-side sharing is part of the surface).
    lhs: String,
    rhs: String,
    /// The replayed lemma trace of a proof (empty when not proved).
    steps: Vec<(Lemma, String)>,
}

fn run_mode(a: &UExpr, b: &UExpr, mode: RebuildMode) -> Observed {
    let mut solver = Solver::new(Budget::new(16, 4_000));
    solver.egraph().set_rebuild_mode(mode);
    assert_eq!(solver.egraph().rebuild_mode(), mode);
    let la = solver.seed_expr(a);
    let lb = solver.seed_expr(b);
    let (outcome, _stats) = solver.run(la, lb);
    let proved = outcome == Outcome::Proved;
    let mut trace = Trace::new();
    if proved {
        assert!(solver.explain_into(la, lb, &mut trace), "proof must replay");
    }
    let mut map = HashMap::new();
    let lhs = match solver.extract_best(la, &TreeSize) {
        Some((_, e)) => format!("{}", alpha(&e, &mut map)),
        None => "<none>".to_owned(),
    };
    let rhs = match solver.extract_best(lb, &TreeSize) {
        Some((_, e)) => format!("{}", alpha(&e, &mut map)),
        None => "<none>".to_owned(),
    };
    Observed {
        proved,
        lhs,
        rhs,
        steps: trace.steps().to_vec(),
    }
}

fn check_pair(ea: &UExpr, eb: &UExpr, label: &str) {
    let deferred = run_mode(ea, eb, RebuildMode::Deferred);
    let deferred2 = run_mode(ea, eb, RebuildMode::Deferred);
    assert_eq!(
        deferred, deferred2,
        "{label}: deferred mode must be deterministic"
    );
    let per_union = run_mode(ea, eb, RebuildMode::PerUnion);
    assert_eq!(
        deferred, per_union,
        "{label}: batched rebuild diverged from the per-union baseline on\n  {ea}\n  {eb}"
    );
}

fn corpus_env() -> QueryEnv {
    let binary = Schema::flat([BaseType::Int, BaseType::Int]);
    QueryEnv::new()
        .with_table("R", binary.clone())
        .with_table("S", binary.clone())
        .with_table("T", binary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn deferred_rebuild_is_bit_identical_to_per_union_on_cq_corpus(seed in 0u64..100_000) {
        let env = corpus_env();
        let pairs: Vec<_> = equivalent_pairs(seed, 6)
            .iter()
            .filter_map(|(a, b)| {
                Some((cq::translate::to_query(a, &env)?, cq::translate::to_query(b, &env)?))
            })
            .collect();
        if pairs.len() < 2 {
            // Corpus didn't render under this env; skip the case.
            return Ok(());
        }
        // Equivalent pairs: positive (or at least identical) verdicts.
        for (i, (qa, qb)) in pairs.iter().enumerate() {
            let (ea, eb) = denote_pair(qa, qb, &env);
            check_pair(&ea, &eb, &format!("seed {seed} pair {i}"));
        }
        // Cross pairs: lhs of one against lhs of the next — usually
        // inequivalent, so the saturated/negative path is compared too.
        for w in pairs.windows(2) {
            let (ea, _) = denote_pair(&w[0].0, &w[0].0, &env);
            let (eb, _) = denote_pair(&w[1].0, &w[1].0, &env);
            check_pair(&ea, &eb, &format!("seed {seed} cross"));
        }
    }
}
