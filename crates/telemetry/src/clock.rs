//! Injectable monotonic clock.
//!
//! Production code reads wall-clock nanoseconds since the first call
//! ([`now_ns`] over a lazily pinned [`Instant`] epoch). Tests switch the
//! process to a manual clock ([`set_manual`] / [`advance_manual`]) so span
//! durations and histogram contents are exact, deterministic numbers.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

const MODE_REAL: u8 = 0;
const MODE_MANUAL: u8 = 1;

static MODE: AtomicU8 = AtomicU8::new(MODE_REAL);
static MANUAL_NOW: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Current monotonic time in nanoseconds.
///
/// Real mode: nanoseconds since the process-wide epoch (pinned on first
/// call). Manual mode: whatever the test last set.
pub fn now_ns() -> u64 {
    if MODE.load(Ordering::Relaxed) == MODE_MANUAL {
        return MANUAL_NOW.load(Ordering::Relaxed);
    }
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Switches the process to the manual clock and sets it to `ns`.
pub fn set_manual(ns: u64) {
    MANUAL_NOW.store(ns, Ordering::Relaxed);
    MODE.store(MODE_MANUAL, Ordering::Relaxed);
}

/// Advances the manual clock by `delta_ns` (switches to manual mode if the
/// clock was real).
pub fn advance_manual(delta_ns: u64) {
    MANUAL_NOW.fetch_add(delta_ns, Ordering::Relaxed);
    MODE.store(MODE_MANUAL, Ordering::Relaxed);
}

/// Switches back to the real monotonic clock.
pub fn use_real() {
    MODE.store(MODE_REAL, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_exact() {
        let _g = crate::test_guard();
        set_manual(10);
        assert_eq!(now_ns(), 10);
        advance_manual(32);
        assert_eq!(now_ns(), 42);
        use_real();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
