//! Std-only telemetry substrate for the DOPCERT workspace.
//!
//! The offline build environment has no `tracing`/`prometheus` crates, so
//! this crate provides the minimal measurement vocabulary the workspace
//! needs, with three hard guarantees:
//!
//! 1. **Strict no-op when disabled.** Every entry point checks one relaxed
//!    atomic load and returns immediately when telemetry is off; the span
//!    guard is an enum whose `Off` variant drops without doing anything
//!    (static dispatch, no allocation, no clock read).
//! 2. **No behavioural footprint.** Telemetry only *observes*: enabling it
//!    must never change verdicts, traces, or reports (property-tested in
//!    `crates/dopcert/tests/telemetry_identity.rs`).
//! 3. **Deterministic under test.** The clock is injectable
//!    ([`clock::set_manual`]), so histogram and trace tests assert exact
//!    numbers instead of sleeping.
//!
//! Data model: per-thread [`recorder::Recorder`] state accumulates named
//! counters and log₂-bucketed [`hist::Histogram`]s plus (when tracing is
//! on) Chrome trace events; it is merged into a process-wide sink when the
//! outermost span of a thread closes and when the thread exits. The sink
//! can be snapshotted ([`recorder::snapshot`]), rendered as
//! Prometheus-style text ([`metrics::Metrics::render_prometheus`]), or
//! dumped as Chrome trace-event JSON ([`recorder::write_chrome_trace`])
//! loadable in `about:tracing` / Perfetto.

#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod trace;

pub use hist::Histogram;
pub use metrics::Metrics;
pub use profile::Profile;
pub use recorder::{
    count, counter_event, disable, enable, enable_profiling, enable_tracing, flush, local_depth,
    metrics_enabled, observe, profile_count, profile_observe, profile_snapshot, profiling_enabled,
    reset, snapshot, span, take_trace, tracing_enabled, write_chrome_trace, SpanGuard,
};
pub use trace::TraceEvent;

/// Serializes this crate's own unit tests: they toggle the process-wide
/// enabled flag and the manual clock, so they must not interleave.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
