//! Log₂-bucketed histograms.
//!
//! Bucket `i` holds observations whose bit length is `i` — i.e. values in
//! `[2^(i-1), 2^i)` for `i ≥ 1`, with bucket 0 reserved for the value 0.
//! That gives 65 fixed buckets covering the full `u64` range with ~2×
//! relative error on quantiles, no configuration, and O(1) merge — exactly
//! what per-worker latency aggregation needs.

/// Number of buckets: one per bit length (0..=64).
pub const BUCKETS: usize = 65;

/// A mergeable log₂-bucketed histogram of `u64` observations
/// (nanoseconds, node counts, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index of a value: its bit length (0 for the value 0).
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`le` label in the exposition).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Reassembles a histogram from previously exposed parts — how the
    /// wire layer rehydrates profile histograms losslessly. `min` is as
    /// returned by [`Histogram::min`] (0 when empty).
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    ) -> Histogram {
        Histogram {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Merges another histogram into this one (worker → batch
    /// aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts (index = bit length of the observation).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), resolved to the upper bound of
    /// the bucket containing the target rank and clamped to the observed
    /// max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; ceil(q * count).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_matches_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        // p50 of 1..=1000 is rank 500 (value 500, bucket bound 511).
        assert_eq!(h.p50(), 511);
        assert!(h.p90() >= 900 && h.p90() <= 1000, "p90={}", h.p90());
        assert!(h.p99() >= 990 && h.p99() <= 1000, "p99={}", h.p99());
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }
}
