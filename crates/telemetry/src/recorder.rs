//! Thread-local recorder + process-wide sink.
//!
//! Each thread accumulates into a private [`Metrics`] bag (no locking on
//! the hot path); the bag is merged into the process-wide sink when the
//! thread's outermost span closes and when the thread exits (TLS drop —
//! this is what collects the scoped worker threads of
//! `dopcert::engine`). Counters bumped outside any span go straight to
//! the sink so long-lived threads (serve workers between requests) stay
//! visible.
//!
//! When telemetry is disabled every entry point is a strict no-op behind
//! one relaxed atomic load, and [`span`] returns [`SpanGuard::Off`] —
//! static enum dispatch, no clock read, no allocation.

use crate::clock;
use crate::metrics::Metrics;
use crate::profile::Profile;
use crate::trace::{render_chrome_trace, TraceEvent};
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

const METRICS_BIT: u8 = 0b01;
const TRACING_BIT: u8 = 0b10;
const PROFILE_BIT: u8 = 0b100;

/// Hard cap on buffered trace events (drops beyond it are counted in the
/// `trace.dropped` counter instead of exhausting memory).
const TRACE_CAP: usize = 1 << 20;

static ENABLED: AtomicU8 = AtomicU8::new(0);
static GLOBAL: Mutex<Metrics> = Mutex::new(Metrics::new());
static PROFILE: Mutex<Profile> = Mutex::new(Profile::new());
static TRACE: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct Recorder {
    tid: u64,
    depth: usize,
    metrics: Metrics,
    profile: Profile,
    events: Vec<TraceEvent>,
}

impl Recorder {
    fn flush_out(&mut self) {
        if !self.metrics.is_empty() {
            let mut global = lock(&GLOBAL);
            global.merge(&self.metrics);
            self.metrics.clear();
        }
        if !self.profile.is_empty() {
            let mut profile = lock(&PROFILE);
            profile.merge(&self.profile);
            self.profile.clear();
        }
        if !self.events.is_empty() {
            let mut trace = lock(&TRACE);
            let room = TRACE_CAP.saturating_sub(trace.len());
            let n = self.events.len();
            trace.extend(self.events.drain(..n.min(room)));
            if n > room {
                drop(trace);
                lock(&GLOBAL).incr("trace.dropped", (n - room) as u64);
                self.events.clear();
            }
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush_out();
    }
}

thread_local! {
    static LOCAL: RefCell<Recorder> = RefCell::new(Recorder {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        depth: 0,
        metrics: Metrics::new(),
        profile: Profile::new(),
        events: Vec::new(),
    });
}

fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Enables metric collection (counters + histograms), tracing off.
pub fn enable() {
    ENABLED.store(METRICS_BIT, Ordering::Relaxed);
}

/// Enables metric collection AND span tracing (Chrome trace events).
pub fn enable_tracing() {
    ENABLED.store(METRICS_BIT | TRACING_BIT, Ordering::Relaxed);
}

/// Additionally enables per-label profiling (attribution tables +
/// growth counter events). Unlike [`enable`]/[`enable_tracing`] this
/// composes: it ORs its bit into whatever mode is already on, so
/// `enable_tracing(); enable_profiling();` yields all three.
pub fn enable_profiling() {
    ENABLED.fetch_or(PROFILE_BIT, Ordering::Relaxed);
}

/// Disables all collection; every subsequent call is a strict no-op.
pub fn disable() {
    ENABLED.store(0, Ordering::Relaxed);
}

/// Whether metric collection is on.
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) & METRICS_BIT != 0
}

/// Whether span tracing is on.
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) & TRACING_BIT != 0
}

/// Whether per-label profiling is on.
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) & PROFILE_BIT != 0
}

/// Adds `by` to a named counter (no-op when disabled).
pub fn count(name: &'static str, by: u64) {
    if !metrics_enabled() {
        return;
    }
    let direct = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            if local.depth == 0 {
                true
            } else {
                local.metrics.incr(name, by);
                false
            }
        })
        .unwrap_or(true);
    if direct {
        lock(&GLOBAL).incr(name, by);
    }
}

/// Records one observation into a named histogram (no-op when disabled).
pub fn observe(name: &'static str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    let direct = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            if local.depth == 0 {
                true
            } else {
                local.metrics.observe(name, v);
                false
            }
        })
        .unwrap_or(true);
    if direct {
        lock(&GLOBAL).observe(name, v);
    }
}

/// Adds `by` to `metric` in the profile row of `label` (no-op unless
/// profiling is on). Buffered like [`count`]: thread-local inside spans,
/// straight to the process-wide profile at depth 0.
pub fn profile_count(label: &str, metric: &'static str, by: u64) {
    if !profiling_enabled() {
        return;
    }
    let direct = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            if local.depth == 0 {
                true
            } else {
                local.profile.incr(label, metric, by);
                false
            }
        })
        .unwrap_or(true);
    if direct {
        lock(&PROFILE).incr(label, metric, by);
    }
}

/// Records one observation into `metric`'s histogram in the profile row
/// of `label` (no-op unless profiling is on).
pub fn profile_observe(label: &str, metric: &'static str, v: u64) {
    if !profiling_enabled() {
        return;
    }
    let direct = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            if local.depth == 0 {
                true
            } else {
                local.profile.observe(label, metric, v);
                false
            }
        })
        .unwrap_or(true);
    if direct {
        lock(&PROFILE).observe(label, metric, v);
    }
}

/// Emits one counter sample (a `"ph":"C"` value-over-time track point in
/// the Chrome trace — how e-graph growth curves are drawn). No-op unless
/// BOTH tracing and profiling are on, so plain `--trace-out` dumps stay
/// byte-identical to their pre-profiling shape.
pub fn counter_event(name: &'static str, value: u64) {
    if !tracing_enabled() || !profiling_enabled() {
        return;
    }
    let ts_ns = clock::now_ns();
    let spilled = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            let tid = local.tid;
            if local.events.len() < TRACE_CAP {
                local
                    .events
                    .push(TraceEvent::counter(name, ts_ns, tid, value));
            }
            let depth0 = local.depth == 0;
            if depth0 {
                local.flush_out();
            }
            false
        })
        .unwrap_or(true);
    if spilled {
        let mut trace = lock(&TRACE);
        if trace.len() < TRACE_CAP {
            trace.push(TraceEvent::counter(name, ts_ns, 0, value));
        } else {
            drop(trace);
            lock(&GLOBAL).incr("trace.dropped", 1);
        }
    }
}

/// An RAII span: duration is recorded into the histogram of the same
/// name when the guard drops (and as a trace event when tracing is on).
/// [`SpanGuard::Off`] — returned whenever telemetry is disabled — does
/// nothing on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub enum SpanGuard {
    /// Telemetry disabled: dropping does nothing.
    Off,
    /// Telemetry enabled: dropping records the span.
    On {
        /// Metric/trace name of the span.
        name: &'static str,
        /// Start timestamp from [`clock::now_ns`].
        start_ns: u64,
    },
}

/// Opens a span. Bind the guard (`let _span = telemetry::span(..)`) so it
/// covers the intended scope; early returns and `?` still record it.
pub fn span(name: &'static str) -> SpanGuard {
    if ENABLED.load(Ordering::Relaxed) == 0 {
        return SpanGuard::Off;
    }
    let _ = LOCAL.try_with(|local| {
        local.borrow_mut().depth += 1;
    });
    SpanGuard::On {
        name,
        start_ns: clock::now_ns(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let SpanGuard::On { name, start_ns } = *self else {
            return;
        };
        let dur_ns = clock::now_ns().saturating_sub(start_ns);
        let tracing = tracing_enabled();
        let fallback = LOCAL
            .try_with(|local| {
                let mut local = local.borrow_mut();
                local.metrics.observe(name, dur_ns);
                if tracing && local.events.len() < TRACE_CAP {
                    let tid = local.tid;
                    local
                        .events
                        .push(TraceEvent::span(name, start_ns, dur_ns, tid));
                }
                local.depth = local.depth.saturating_sub(1);
                if local.depth == 0 {
                    local.flush_out();
                }
                false
            })
            .unwrap_or(true);
        if fallback {
            lock(&GLOBAL).observe(name, dur_ns);
        }
    }
}

/// Current thread's open-span depth (0 when balanced). Test hook for the
/// span-nesting-balance properties.
pub fn local_depth() -> usize {
    LOCAL.try_with(|local| local.borrow().depth).unwrap_or(0)
}

/// Merges the current thread's buffered data into the process-wide sink.
pub fn flush() {
    let _ = LOCAL.try_with(|local| local.borrow_mut().flush_out());
}

/// Flushes the current thread and returns a copy of the process-wide
/// metrics.
pub fn snapshot() -> Metrics {
    flush();
    lock(&GLOBAL).clone()
}

/// Flushes the current thread and returns a copy of the process-wide
/// attribution profile (merged across all flushed threads/workers).
pub fn profile_snapshot() -> Profile {
    flush();
    lock(&PROFILE).clone()
}

/// Flushes the current thread and drains all buffered trace events.
pub fn take_trace() -> Vec<TraceEvent> {
    flush();
    std::mem::take(&mut *lock(&TRACE))
}

/// Drains buffered trace events and writes them to `path` as Chrome
/// trace-event JSON (Perfetto / `about:tracing` loadable).
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let events = take_trace();
    std::fs::write(path, render_chrome_trace(&events))
}

/// Clears the process-wide sink, buffered trace events, and the current
/// thread's buffers. Does not change the enabled state.
pub fn reset() {
    let _ = LOCAL.try_with(|local| {
        let mut local = local.borrow_mut();
        local.metrics.clear();
        local.profile.clear();
        local.events.clear();
    });
    lock(&GLOBAL).clear();
    lock(&PROFILE).clear();
    lock(&TRACE).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_guard;

    #[test]
    fn disabled_is_a_strict_noop() {
        let _g = test_guard();
        disable();
        reset();
        count("x", 1);
        observe("y", 2);
        {
            let _span = span("z");
            assert!(matches!(_span, SpanGuard::Off));
        }
        assert_eq!(local_depth(), 0);
        assert!(snapshot().is_empty());
        assert!(take_trace().is_empty());
    }

    #[test]
    fn span_durations_land_in_the_histogram() {
        let _g = test_guard();
        clock::set_manual(1_000);
        enable_tracing();
        reset();
        {
            let _outer = span("outer");
            clock::advance_manual(10);
            {
                let _inner = span("egraph.rebuild");
                clock::advance_manual(500);
            }
            clock::advance_manual(5);
            count("memo.norm.hit", 3);
        }
        assert_eq!(local_depth(), 0);
        let m = snapshot();
        assert_eq!(m.hist("egraph.rebuild").unwrap().count(), 1);
        assert_eq!(m.hist("egraph.rebuild").unwrap().sum(), 500);
        assert_eq!(m.hist("outer").unwrap().sum(), 515);
        assert_eq!(m.counter("memo.norm.hit"), 3);
        let trace = take_trace();
        assert_eq!(trace.len(), 2);
        // Inner span closed first.
        assert_eq!(trace[0].name, "egraph.rebuild");
        assert_eq!(trace[0].ts_ns, 1_010);
        assert_eq!(trace[0].dur_ns, 500);
        assert_eq!(trace[1].name, "outer");
        disable();
        reset();
        clock::use_real();
    }

    #[test]
    fn profiling_is_a_strict_noop_until_enabled() {
        let _g = test_guard();
        enable_tracing();
        reset();
        profile_count("Distrib", "unions", 3);
        profile_observe("Distrib", "apply_ns", 10);
        counter_event("egraph.classes", 7);
        assert!(profile_snapshot().is_empty());
        assert!(take_trace().is_empty());
        disable();
        reset();
    }

    #[test]
    fn profile_rows_buffer_in_spans_and_flush_to_the_sink() {
        let _g = test_guard();
        clock::set_manual(0);
        enable();
        enable_profiling();
        reset();
        {
            let _span = span("egraph.run");
            profile_count("Distrib", "unions", 2);
            profile_observe("Distrib", "apply_ns", 40);
            // Buffered: the sink sees nothing until the span closes.
            assert!(lock(&PROFILE).is_empty());
        }
        profile_count("Distrib", "unions", 1); // depth 0 → direct
        let p = profile_snapshot();
        assert_eq!(p.counter("Distrib", "unions"), 3);
        assert_eq!(
            p.row("Distrib").unwrap().hist("apply_ns").unwrap().sum(),
            40
        );
        // Worker threads merge on exit, losing nothing.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _span = span("egraph.run");
                profile_count("Distrib", "unions", 5);
                profile_count("SumSwap", "matches", 1);
            });
        });
        let p = profile_snapshot();
        assert_eq!(p.counter("Distrib", "unions"), 8);
        assert_eq!(p.counter("SumSwap", "matches"), 1);
        disable();
        reset();
        clock::use_real();
    }

    #[test]
    fn counter_events_need_both_tracing_and_profiling() {
        let _g = test_guard();
        clock::set_manual(2_000);
        enable_tracing();
        reset();
        counter_event("egraph.classes", 10);
        assert!(take_trace().is_empty(), "tracing alone must not emit");
        enable_profiling();
        counter_event("egraph.classes", 11);
        let trace = take_trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].name, "egraph.classes");
        assert_eq!(trace[0].value, Some(11));
        assert_eq!(trace[0].ts_ns, 2_000);
        disable();
        reset();
        clock::use_real();
    }

    #[test]
    fn counters_outside_spans_are_immediately_visible() {
        let _g = test_guard();
        enable();
        reset();
        count("serve.live", 7);
        // No flush: depth-0 counts go straight to the sink.
        assert_eq!(lock(&GLOBAL).counter("serve.live"), 7);
        disable();
        reset();
    }

    #[test]
    fn early_returns_keep_span_depth_balanced() {
        let _g = test_guard();
        clock::set_manual(0);
        enable();
        reset();
        fn may_bail(bail: bool) -> Option<u64> {
            let _span = span("work");
            let _inner = span("work.inner");
            if bail {
                return None;
            }
            Some(clock::now_ns())
        }
        assert!(may_bail(true).is_none());
        assert_eq!(local_depth(), 0);
        assert!(may_bail(false).is_some());
        assert_eq!(local_depth(), 0);
        let m = snapshot();
        assert_eq!(m.hist("work").unwrap().count(), 2);
        assert_eq!(m.hist("work.inner").unwrap().count(), 2);
        disable();
        reset();
        clock::use_real();
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _g = test_guard();
        clock::set_manual(0);
        enable();
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _span = span("worker.goal");
                    clock::advance_manual(1);
                    count("memo.verdict.hit", 2);
                });
            }
        });
        let m = snapshot();
        assert_eq!(m.hist("worker.goal").unwrap().count(), 4);
        assert_eq!(m.counter("memo.verdict.hit"), 8);
        disable();
        reset();
        clock::use_real();
    }
}
