//! Chrome trace-event JSON export.
//!
//! Spans recorded while tracing is enabled become complete (`"ph":"X"`)
//! events in the Trace Event Format, loadable in `about:tracing` or
//! <https://ui.perfetto.dev>. Timestamps/durations are microseconds per
//! the format; sub-microsecond spans are rounded up to 1µs so they stay
//! visible.

use std::fmt::Write as _;

/// One completed span: name, start, duration, and the recording thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (also used as the metric name for its duration
    /// histogram).
    pub name: &'static str,
    /// Start time in nanoseconds (clock of [`crate::clock::now_ns`]).
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Stable per-thread id (assigned in recorder registration order).
    pub tid: u64,
}

/// Renders events as a Chrome trace-event JSON document.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cat = ev.name.split('.').next().unwrap_or("span");
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{}}}",
            escape(ev.name),
            escape(cat),
            ev.tid,
            ev.ts_ns / 1_000,
            (ev.dur_ns / 1_000).max(1),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Minimal JSON string escaping (span names are static identifiers, but
/// stay safe anyway).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_complete_events() {
        let events = vec![
            TraceEvent {
                name: "egraph.rebuild",
                ts_ns: 5_000,
                dur_ns: 2_500,
                tid: 1,
            },
            TraceEvent {
                name: "optimizer.certify",
                ts_ns: 10_000,
                dur_ns: 100,
                tid: 2,
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"egraph.rebuild\",\"cat\":\"egraph\",\"ph\":\"X\",\
             \"pid\":1,\"tid\":1,\"ts\":5,\"dur\":2}"
        ));
        // Sub-microsecond durations round up to 1 so Perfetto shows them.
        assert!(json.contains("\"ts\":10,\"dur\":1}"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }
}
