//! Chrome trace-event JSON export.
//!
//! Spans recorded while tracing is enabled become complete (`"ph":"X"`)
//! events in the Trace Event Format, loadable in `about:tracing` or
//! <https://ui.perfetto.dev>. Timestamps/durations are microseconds per
//! the format; sub-microsecond spans are rounded up to 1µs so they stay
//! visible. Sampled series (e-graph growth: classes/nodes/memo per
//! saturation iteration) are counter (`"ph":"C"`) events — Perfetto
//! renders each name as a value-over-time track, which is how the growth
//! curves are read.

use std::fmt::Write as _;

/// One completed span — or, when `value` is set, one counter sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (also used as the metric name for its duration
    /// histogram) or counter-track name.
    pub name: &'static str,
    /// Start time in nanoseconds (clock of [`crate::clock::now_ns`]).
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for counter samples).
    pub dur_ns: u64,
    /// Stable per-thread id (assigned in recorder registration order).
    pub tid: u64,
    /// `Some(sample)` marks a counter event; `None` a span.
    pub value: Option<u64>,
}

impl TraceEvent {
    /// A completed span.
    pub fn span(name: &'static str, ts_ns: u64, dur_ns: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name,
            ts_ns,
            dur_ns,
            tid,
            value: None,
        }
    }

    /// A counter sample (value-over-time track point).
    pub fn counter(name: &'static str, ts_ns: u64, tid: u64, value: u64) -> TraceEvent {
        TraceEvent {
            name,
            ts_ns,
            dur_ns: 0,
            tid,
            value: Some(value),
        }
    }
}

/// Renders events as a Chrome trace-event JSON document.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cat = ev.name.split('.').next().unwrap_or("span");
        match ev.value {
            None => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                     \"ts\":{},\"dur\":{}}}",
                    escape(ev.name),
                    escape(cat),
                    ev.tid,
                    ev.ts_ns / 1_000,
                    (ev.dur_ns / 1_000).max(1),
                );
            }
            Some(v) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\
                     \"ts\":{},\"args\":{{\"value\":{v}}}}}",
                    escape(ev.name),
                    escape(cat),
                    ev.tid,
                    ev.ts_ns / 1_000,
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Minimal JSON string escaping (span names are static identifiers, but
/// stay safe anyway).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_complete_events() {
        let events = vec![
            TraceEvent::span("egraph.rebuild", 5_000, 2_500, 1),
            TraceEvent::span("optimizer.certify", 10_000, 100, 2),
        ];
        let json = render_chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"egraph.rebuild\",\"cat\":\"egraph\",\"ph\":\"X\",\
             \"pid\":1,\"tid\":1,\"ts\":5,\"dur\":2}"
        ));
        // Sub-microsecond durations round up to 1 so Perfetto shows them.
        assert!(json.contains("\"ts\":10,\"dur\":1}"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn counter_events_render_as_value_tracks() {
        let events = vec![TraceEvent::counter("egraph.classes", 7_000, 3, 42)];
        let json = render_chrome_trace(&events);
        assert!(json.contains(
            "{\"name\":\"egraph.classes\",\"cat\":\"egraph\",\"ph\":\"C\",\
             \"pid\":1,\"tid\":3,\"ts\":7,\"args\":{\"value\":42}}"
        ));
    }
}
