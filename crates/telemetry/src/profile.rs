//! Labeled attribution tables.
//!
//! A [`Profile`] is a two-level metric bag: rows keyed by a small string
//! label (rule name, phase, worker), each row an ordinary mergeable
//! [`Metrics`] bag of counters + histograms. It answers the questions the
//! flat process-wide sink cannot — *which rule* burned the time, blew up
//! the e-graph, or never fired — while inheriting the merge/rendering
//! vocabulary of [`Metrics`] (merging two profiles never loses an
//! observation; rows are kept sorted so renders are deterministic).
//!
//! Collection goes through the thread-local recorder behind its own
//! enable bit ([`crate::recorder::enable_profiling`]); see the recorder
//! docs for the buffering/flush contract.

use crate::hist::Histogram;
use crate::metrics::Metrics;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counter names the rendered attribution table has columns for (other
/// metrics still merge and travel the wire; they are just not columns).
const TABLE_COUNTERS: [&str; 4] = ["matches", "unions", "nodes_added", "oracle_calls"];

/// Histogram whose sum is rendered as the per-row `apply_ms` column.
const TABLE_TIME: &str = "apply_ns";

/// A mergeable attribution table: label → metric bag.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    rows: BTreeMap<String, Metrics>,
}

impl Profile {
    /// An empty profile.
    pub const fn new() -> Profile {
        Profile {
            rows: BTreeMap::new(),
        }
    }

    fn row_mut(&mut self, label: &str) -> &mut Metrics {
        if !self.rows.contains_key(label) {
            self.rows.insert(label.to_owned(), Metrics::new());
        }
        self.rows.get_mut(label).expect("row just inserted")
    }

    /// Adds `by` to `metric` in the row of `label`.
    pub fn incr(&mut self, label: &str, metric: &str, by: u64) {
        self.row_mut(label).incr(metric, by);
    }

    /// Records one observation into `metric`'s histogram in the row of
    /// `label`.
    pub fn observe(&mut self, label: &str, metric: &str, v: u64) {
        self.row_mut(label).observe(metric, v);
    }

    /// Merges a whole histogram into a row's metric slot (used when
    /// rehydrating a profile from the wire).
    pub fn merge_hist(&mut self, label: &str, metric: &str, h: &Histogram) {
        self.row_mut(label).merge_hist(metric, h);
    }

    /// Merges another profile into this one. Row-wise [`Metrics::merge`]:
    /// counters sum, histograms merge bucket-wise — no observation is
    /// dropped (property-tested in `dopcert/tests/telemetry_identity.rs`).
    pub fn merge(&mut self, other: &Profile) {
        for (label, metrics) in &other.rows {
            self.row_mut(label).merge(metrics);
        }
    }

    /// True when no row holds any data.
    pub fn is_empty(&self) -> bool {
        self.rows.values().all(Metrics::is_empty)
    }

    /// Number of rows (labels).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Drops all rows.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// The row of `label`, if present.
    pub fn row(&self, label: &str) -> Option<&Metrics> {
        self.rows.get(label)
    }

    /// All rows, sorted by label.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &Metrics)> {
        self.rows.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Value of `metric` in the row of `label` (0 when absent).
    pub fn counter(&self, label: &str, metric: &str) -> u64 {
        self.rows.get(label).map_or(0, |m| m.counter(metric))
    }

    /// Sum of `metric` across all rows — the cross-check against the
    /// flat aggregate counters (`egraph.unions`, `egraph.nodes_added`).
    pub fn total(&self, metric: &str) -> u64 {
        self.rows.values().map(|m| m.counter(metric)).sum()
    }

    /// Total observations recorded anywhere in the profile (counter
    /// increments + histogram observations) — the conserved quantity of
    /// [`Profile::merge`].
    pub fn observations(&self) -> u64 {
        self.rows
            .values()
            .map(|m| {
                m.counters().map(|(_, v)| v).sum::<u64>()
                    + m.hists().map(|(_, h)| h.count()).sum::<u64>()
            })
            .sum()
    }

    /// Renders the per-label attribution table (deterministic: rows
    /// sorted by apply time, most expensive first, ties broken by label;
    /// fixed columns, totals line last). The hot rows lead, so the head
    /// of the table is the answer to "where did the time go".
    pub fn render_table(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.rows.len() + 2);
        let width = self
            .rows
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max("total".len());
        let mut header = format!("{:width$}", "label");
        for c in TABLE_COUNTERS {
            let _ = write!(header, " {c:>12}");
        }
        let _ = write!(header, " {:>12}", "apply_ms");
        out.push(header);
        let mut rows: Vec<(&String, &Metrics)> = self.rows.iter().collect();
        rows.sort_by(|(la, ma), (lb, mb)| {
            let ta = ma.hist(TABLE_TIME).map_or(0, Histogram::sum);
            let tb = mb.hist(TABLE_TIME).map_or(0, Histogram::sum);
            tb.cmp(&ta).then_with(|| la.cmp(lb))
        });
        for (label, m) in rows {
            out.push(render_row(label, m, width));
        }
        let mut totals = Metrics::new();
        for m in self.rows.values() {
            totals.merge(m);
        }
        out.push(render_row("total", &totals, width));
        out
    }
}

fn render_row(label: &str, m: &Metrics, width: usize) -> String {
    let mut line = format!("{label:width$}");
    for c in TABLE_COUNTERS {
        let _ = write!(line, " {:>12}", m.counter(c));
    }
    let ms = m.hist(TABLE_TIME).map_or(0, Histogram::sum) as f64 / 1e6;
    let _ = write!(line, " {ms:>12.3}");
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_rows_and_keeps_all_observations() {
        let mut a = Profile::new();
        a.incr("Distrib", "unions", 3);
        a.observe("Distrib", "apply_ns", 100);
        let mut b = Profile::new();
        b.incr("Distrib", "unions", 4);
        b.incr("SumSwap", "matches", 1);
        b.observe("Distrib", "apply_ns", 50);
        let before = a.observations() + b.observations();
        a.merge(&b);
        assert_eq!(a.counter("Distrib", "unions"), 7);
        assert_eq!(a.counter("SumSwap", "matches"), 1);
        assert_eq!(
            a.row("Distrib").unwrap().hist("apply_ns").unwrap().count(),
            2
        );
        assert_eq!(a.observations(), before);
        assert_eq!(a.total("unions"), 7);
    }

    #[test]
    fn table_render_is_deterministic_and_totalled() {
        let mut p = Profile::new();
        p.incr("SumSwap", "unions", 2);
        p.incr("Distrib", "unions", 5);
        p.incr("Distrib", "nodes_added", 9);
        let table = p.render_table();
        assert_eq!(table.len(), 4, "{table:?}");
        assert!(table[0].starts_with("label"));
        // Neither row has time recorded, so the label tiebreak orders
        // them; totals close the table.
        assert!(table[1].starts_with("Distrib"));
        assert!(table[2].starts_with("SumSwap"));
        assert!(table[3].starts_with("total"));
        assert!(table[3].contains('7'), "{:?}", table[3]);
    }

    #[test]
    fn table_rows_lead_with_the_most_expensive_label() {
        let mut p = Profile::new();
        p.observe("AAA_cheap", "apply_ns", 10);
        p.observe("zzz_hot", "apply_ns", 2_000_000);
        p.incr("mid", "matches", 1);
        p.observe("mid", "apply_ns", 500);
        let table = p.render_table();
        assert!(table[1].starts_with("zzz_hot"), "{table:?}");
        assert!(table[2].starts_with("mid"), "{table:?}");
        assert!(table[3].starts_with("AAA_cheap"), "{table:?}");
        assert!(table[4].starts_with("total"), "{table:?}");
    }

    #[test]
    fn empty_profile_reports_empty() {
        let p = Profile::new();
        assert!(p.is_empty());
        assert_eq!(p.observations(), 0);
        assert_eq!(p.len(), 0);
    }
}
