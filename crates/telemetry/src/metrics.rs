//! Named counters + histograms and the Prometheus-style text exposition.
//!
//! Metric names are dotted (`memo.norm.hit`, `egraph.rebuild`) and may
//! carry a literal label suffix (`request.latency_ns{kind="prove"}`). The
//! exposition sanitizes dots to underscores, prefixes `dopcert_`, and for
//! histograms emits cumulative `_bucket{le=...}` lines plus `_sum`,
//! `_count` and `quantile=` summary lines (p50/p90/p99).

use crate::hist::{bucket_bound, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A mergeable bag of named counters and histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty metric bag.
    pub const fn new() -> Metrics {
        Metrics {
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.hists.insert(name.to_owned(), h);
        }
    }

    /// Merges a whole histogram into the named slot — how a server
    /// folds externally-kept histograms (e.g. per-request-kind latency)
    /// into an exposition bag.
    pub fn merge_hist(&mut self, name: &str, h: &Histogram) {
        if let Some(mine) = self.hists.get_mut(name) {
            mine.merge(h);
        } else {
            self.hists.insert(name.to_owned(), h.clone());
        }
    }

    /// Merges another bag into this one (summing counters, merging
    /// histograms).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, by) in &other.counters {
            self.incr(name, *by);
        }
        for (name, h) in &other.hists {
            if let Some(mine) = self.hists.get_mut(name) {
                mine.merge(h);
            } else {
                self.hists.insert(name.clone(), h.clone());
            }
        }
    }

    /// True when no counter or histogram has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Drops all recorded data.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.hists.clear();
    }

    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the whole bag as Prometheus-style text exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, v) in &self.counters {
            let (base, labels) = sanitize(name);
            if base != last_family {
                let _ = writeln!(out, "# TYPE {base} counter");
                last_family = base.clone();
            }
            let _ = writeln!(out, "{base}{} {v}", braced(&labels, ""));
        }
        for (name, h) in &self.hists {
            let (base, labels) = sanitize(name);
            if base != last_family {
                let _ = writeln!(out, "# TYPE {base} histogram");
                last_family = base.clone();
            }
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = bucket_bound(i);
                let _ = writeln!(
                    out,
                    "{base}_bucket{} {cumulative}",
                    braced(&labels, &format!("le=\"{le}\""))
                );
            }
            let _ = writeln!(
                out,
                "{base}_bucket{} {}",
                braced(&labels, "le=\"+Inf\""),
                h.count()
            );
            let _ = writeln!(out, "{base}_sum{} {}", braced(&labels, ""), h.sum());
            let _ = writeln!(out, "{base}_count{} {}", braced(&labels, ""), h.count());
            for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                let _ = writeln!(
                    out,
                    "{base}{} {v}",
                    braced(&labels, &format!("quantile=\"{q}\""))
                );
            }
        }
        out
    }
}

/// Splits a metric name into a sanitized `dopcert_`-prefixed base and the
/// literal label list carried in a `{...}` suffix (empty when absent).
fn sanitize(name: &str) -> (String, String) {
    let (raw, labels) = match name.split_once('{') {
        Some((raw, rest)) => (raw, rest.trim_end_matches('}').to_owned()),
        None => (name, String::new()),
    };
    let mut base = String::with_capacity(raw.len() + 8);
    base.push_str("dopcert_");
    for ch in raw.chars() {
        if ch.is_ascii_alphanumeric() {
            base.push(ch);
        } else {
            base.push('_');
        }
    }
    (base, labels)
}

/// Joins stored labels with an extra label into a `{...}` block (empty
/// string when there are no labels at all).
fn braced(labels: &str, extra: &str) -> String {
    match (labels.is_empty(), extra.is_empty()) {
        (true, true) => String::new(),
        (true, false) => format!("{{{extra}}}"),
        (false, true) => format!("{{{labels}}}"),
        (false, false) => format!("{{{labels},{extra}}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = Metrics::new();
        a.incr("memo.norm.hit", 3);
        a.observe("egraph.rebuild", 100);
        let mut b = Metrics::new();
        b.incr("memo.norm.hit", 4);
        b.incr("memo.norm.miss", 1);
        b.observe("egraph.rebuild", 200);
        a.merge(&b);
        assert_eq!(a.counter("memo.norm.hit"), 7);
        assert_eq!(a.counter("memo.norm.miss"), 1);
        assert_eq!(a.hist("egraph.rebuild").unwrap().count(), 2);
        assert_eq!(a.hist("egraph.rebuild").unwrap().sum(), 300);
    }

    #[test]
    fn prometheus_render_is_labelled_and_cumulative() {
        let mut m = Metrics::new();
        m.incr("serve.requests", 2);
        m.observe("request.latency_ns{kind=\"prove\"}", 3);
        m.observe("request.latency_ns{kind=\"prove\"}", 100);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE dopcert_serve_requests counter"));
        assert!(text.contains("dopcert_serve_requests 2"));
        assert!(text.contains("# TYPE dopcert_request_latency_ns histogram"));
        assert!(text.contains("dopcert_request_latency_ns_bucket{kind=\"prove\",le=\"3\"} 1"));
        assert!(text.contains("dopcert_request_latency_ns_bucket{kind=\"prove\",le=\"+Inf\"} 2"));
        assert!(text.contains("dopcert_request_latency_ns_sum{kind=\"prove\"} 103"));
        assert!(text.contains("dopcert_request_latency_ns_count{kind=\"prove\"} 2"));
        assert!(text.contains("dopcert_request_latency_ns{kind=\"prove\",quantile=\"0.5\"}"));
        // Every line is `name{labels} value` or a comment — parseable.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.rsplit_once(' ').is_some(),
                "bad line: {line}"
            );
        }
    }
}
