//! Property tests for the telemetry substrate.
//!
//! Histograms: merging per-worker histograms must be observationally
//! identical to recording everything into one histogram, and quantile
//! estimates must bracket the exact quantile within the log₂ bucket's
//! resolution. Spans: arbitrary nesting with early returns must leave the
//! thread's span depth balanced at zero.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use telemetry::Histogram;

/// Serializes tests that touch the process-wide recorder/clock state.
fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn random_values(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Spread across magnitudes so many buckets are exercised.
            let bits = rng.gen_range(0..48u32);
            let base = 1u64 << bits;
            rng.gen_range(0..=base)
        })
        .collect()
}

/// Exact q-quantile by sorting (rank = ceil(q·n), 1-based).
fn exact_quantile(values: &mut [u64], q: f64) -> u64 {
    values.sort_unstable();
    let rank = ((q * values.len() as f64).ceil() as usize).max(1);
    values[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_single_histogram(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        let values = random_values(seed, rng.gen_range(1..400));
        let workers = rng.gen_range(1..8usize);
        // One histogram over everything...
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        // ...vs per-worker shards merged in arbitrary order.
        let mut shards = vec![Histogram::new(); workers];
        for (i, &v) in values.iter().enumerate() {
            shards[i % workers].record(v);
        }
        let mut merged = Histogram::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.count(), values.len() as u64);
        prop_assert_eq!(merged.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn quantiles_are_bucket_accurate(seed in 0u64..10_000) {
        let mut values = random_values(seed, 1 + (seed as usize % 300));
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&mut values, q);
            let est = h.quantile(q);
            // The estimate is the upper bound of the exact value's bucket
            // (clamped to observed min/max): never below the exact value,
            // never more than 2x above it (log2 buckets), always within
            // the observed range.
            prop_assert!(est >= exact.min(h.max()), "q={q} est={est} exact={exact}");
            prop_assert!(
                est <= exact.saturating_mul(2).max(1).min(h.max()),
                "q={q} est={est} exact={exact} max={}", h.max()
            );
            prop_assert!(est >= h.min() && est <= h.max());
        }
    }

    #[test]
    fn span_depth_balances_under_early_returns(seed in 0u64..5_000) {
        let _g = test_guard();
        telemetry::enable();
        fn walk(rng: &mut StdRng, depth: usize) -> Result<usize, usize> {
            let _span = telemetry::span("prop.walk");
            if rng.gen_bool(0.25) {
                return Err(depth); // early return with the guard live
            }
            let mut seen = 1;
            if depth < 5 {
                for _ in 0..rng.gen_range(0..3usize) {
                    seen += walk(rng, depth + 1).unwrap_or(1);
                }
            }
            Ok(seen)
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let _ = walk(&mut rng, 0);
            prop_assert_eq!(telemetry::local_depth(), 0);
        }
        telemetry::disable();
        telemetry::reset();
    }
}

#[test]
fn exposition_of_merged_workers_is_consistent() {
    let _g = test_guard();
    let mut total = telemetry::Metrics::new();
    for worker in 0..4u64 {
        let mut m = telemetry::Metrics::new();
        for i in 0..worker + 1 {
            m.incr("memo.norm.hit", 1);
            m.observe("egraph.rebuild", (i + 1) * 100);
        }
        total.merge(&m);
    }
    assert_eq!(total.counter("memo.norm.hit"), 10);
    let h = total.hist("egraph.rebuild").unwrap();
    assert_eq!(h.count(), 10);
    let text = total.render_prometheus();
    assert!(text.contains("dopcert_memo_norm_hit 10"));
    assert!(text.contains("dopcert_egraph_rebuild_count 10"));
    assert!(text.contains("dopcert_egraph_rebuild_bucket{le=\"+Inf\"} 10"));
}
